//! Deterministic binary checkpoints of simulator and protocol state.
//!
//! A checkpoint is a version-tagged byte snapshot of *everything* that
//! influences a run's future: actor state, pending events (with their
//! insertion sequence numbers, which are tie-breakers in the calendar
//! queue), the RNG state, timers, metrics, traces and the channel
//! model. The hard contract — enforced by `tests/checkpoint_differential.rs`
//! — is that restore-then-run is **byte-identical** to an uninterrupted
//! run, for any `CBFD_WORKERS`.
//!
//! The format is deliberately simple: a magic header, a format version,
//! then fields in declaration order, all integers big-endian, floats as
//! raw IEEE-754 bits (never formatted/parsed, so round-trips are
//! exact). Collections are length-prefixed; maps are written in sorted
//! key order so the encoding of equal states is equal bytes.
//!
//! Sorted-key encoding also makes the format *layout-independent*: a
//! sorted vector of pairs, a `BTreeMap`, and a `HashMap` holding the
//! same entries all serialize to the same bytes. The flat protocol
//! ledgers of `cbfd_core::ledger` (DESIGN.md §16) lean on exactly
//! that — they replaced the node's tree/hash containers without a
//! version bump, and pre-rewrite snapshots restore into flat state
//! unchanged.
//!
//! Types opt in by implementing [`Persist`]; the [`impl_persist!`](crate::impl_persist)
//! macro generates field-by-field implementations for structs whose
//! fields all implement it themselves.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::Hash;

/// Leading magic of every checkpoint.
pub const MAGIC: [u8; 8] = *b"CBFDCKPT";

/// Current checkpoint format version.
///
/// History: `1` — initial format; `2` — adaptive ◇P detection state
/// (per-link estimators, suspicion log, gateway dedup ledger) joined
/// `FdsNode`, and digests grew the optional suspicion field. Version-1
/// snapshots cannot express that state, so the versions reject each
/// other rather than misread trailing fields.
pub const FORMAT_VERSION: u32 = 2;

/// Errors surfaced while writing or reading a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream ended before the snapshot was complete.
    Truncated,
    /// The leading magic bytes are wrong — not a checkpoint.
    BadMagic,
    /// The checkpoint was written by an unknown format version.
    UnsupportedVersion(u32),
    /// A structurally invalid encoding (bad tag, inconsistent
    /// lengths, a state the runtime cannot rebuild).
    Corrupt(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Append-only byte sink for checkpoint encoding.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes (caller encodes the length).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked cursor over checkpoint bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        let b = *self.buf.get(self.pos).ok_or(CheckpointError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_be_bytes(
            self.get_array::<4>()?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_be_bytes(
            self.get_array::<8>()?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn get_array<const N: usize>(&mut self) -> Result<&'a [u8], CheckpointError> {
        self.get_bytes(N)
    }
}

/// Writes the checkpoint magic and format version.
pub fn write_header(w: &mut Writer) {
    w.put_bytes(&MAGIC);
    w.put_u32(FORMAT_VERSION);
}

/// Validates the magic and format version at the reader's position.
///
/// # Errors
///
/// Fails on short input, foreign bytes, or a version this build does
/// not understand.
pub fn read_header(r: &mut Reader<'_>) -> Result<(), CheckpointError> {
    let magic = r.get_bytes(MAGIC.len())?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    Ok(())
}

/// A type that can be written into and rebuilt from a checkpoint.
pub trait Persist: Sized {
    /// Appends the value's encoding to `w`.
    fn persist(&self, w: &mut Writer);

    /// Rebuilds a value from the reader's position.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a structurally invalid encoding.
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError>;
}

/// Generates a field-by-field [`Persist`] impl for a struct whose
/// fields all implement [`Persist`]. Must be invoked where the fields
/// are visible (usually the defining module).
#[macro_export]
macro_rules! impl_persist {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::checkpoint::Persist for $ty {
            fn persist(&self, w: &mut $crate::checkpoint::Writer) {
                $( $crate::checkpoint::Persist::persist(&self.$field, w); )*
            }
            fn restore(
                r: &mut $crate::checkpoint::Reader<'_>,
            ) -> Result<Self, $crate::checkpoint::CheckpointError> {
                Ok(Self {
                    $( $field: $crate::checkpoint::Persist::restore(r)?, )*
                })
            }
        }
    };
}

impl Persist for u8 {
    fn persist(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        r.get_u8()
    }
}

impl Persist for u16 {
    fn persist(&self, w: &mut Writer) {
        w.put_u32(u32::from(*self));
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        u16::try_from(r.get_u32()?).map_err(|_| CheckpointError::Corrupt("u16 out of range"))
    }
}

impl Persist for u32 {
    fn persist(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        r.get_u32()
    }
}

impl Persist for u64 {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        r.get_u64()
    }
}

impl Persist for usize {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        usize::try_from(r.get_u64()?).map_err(|_| CheckpointError::Corrupt("usize out of range"))
    }
}

impl Persist for i32 {
    fn persist(&self, w: &mut Writer) {
        w.put_u32(*self as u32);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(r.get_u32()? as i32)
    }
}

impl Persist for i64 {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(r.get_u64()? as i64)
    }
}

impl Persist for bool {
    fn persist(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Corrupt("bool tag")),
        }
    }
}

impl Persist for f64 {
    // Raw IEEE-754 bits: exact round-trip, including signed zeros and
    // any NaN payload that might have crept into a metric.
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.to_bits());
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(f64::from_bits(r.get_u64()?))
    }
}

impl Persist for String {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        w.put_bytes(self.as_bytes());
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = usize::restore(r)?;
        let bytes = r.get_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CheckpointError::Corrupt("utf-8 string"))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn persist(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.persist(w);
            }
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            _ => Err(CheckpointError::Corrupt("option tag")),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.persist(w);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = usize::restore(r)?;
        // Collections are at least one byte per element in this format,
        // so a lying length cannot force a huge allocation.
        if len > r.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for Box<T> {
    fn persist(&self, w: &mut Writer) {
        (**self).persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(Box::new(T::restore(r)?))
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn persist(&self, w: &mut Writer) {
        self.0.persist(w);
        self.1.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn persist(&self, w: &mut Writer) {
        self.0.persist(w);
        self.1.persist(w);
        self.2.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok((A::restore(r)?, B::restore(r)?, C::restore(r)?))
    }
}

impl<K: Persist + Ord, V: Persist> Persist for BTreeMap<K, V> {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for (k, v) in self {
            k.persist(w);
            v.persist(w);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = usize::restore(r)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::restore(r)?;
            let v = V::restore(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Persist + Ord> Persist for BTreeSet<T> {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.persist(w);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = usize::restore(r)?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<K, V> Persist for HashMap<K, V>
where
    K: Persist + Ord + Hash + Eq,
    V: Persist,
{
    // Hash maps iterate in arbitrary order; sorting the keys makes the
    // encoding of equal maps equal bytes — load-bearing for the
    // "checkpoint of a restored run equals checkpoint of an
    // uninterrupted run" differential tests.
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for (k, v) in entries {
            k.persist(w);
            v.persist(w);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = usize::restore(r)?;
        let mut out = HashMap::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            let k = K::restore(r)?;
            let v = V::restore(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl Persist for crate::id::NodeId {
    fn persist(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(crate::id::NodeId(r.get_u32()?))
    }
}

impl Persist for crate::id::ClusterId {
    fn persist(&self, w: &mut Writer) {
        w.put_u32(self.head().0);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(crate::id::ClusterId::of(crate::id::NodeId(r.get_u32()?)))
    }
}

impl Persist for crate::time::SimTime {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.as_micros());
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(crate::time::SimTime::from_micros(r.get_u64()?))
    }
}

impl Persist for crate::time::SimDuration {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.as_micros());
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(crate::time::SimDuration::from_micros(r.get_u64()?))
    }
}

impl Persist for crate::geometry::Point {
    fn persist(&self, w: &mut Writer) {
        self.x.persist(w);
        self.y.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(crate::geometry::Point {
            x: f64::restore(r)?,
            y: f64::restore(r)?,
        })
    }
}

impl Persist for crate::actor::TimerToken {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(crate::actor::TimerToken(r.get_u64()?))
    }
}

impl Persist for rand::rngs::StdRng {
    fn persist(&self, w: &mut Writer) {
        for word in self.state() {
            w.put_u64(word);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.get_u64()?;
        }
        Ok(rand::rngs::StdRng::from_state(s))
    }
}

impl Persist for crate::topology::Topology {
    // Adjacency is a pure function of positions and range
    // (`from_positions` is deterministic), so only those are stored.
    fn persist(&self, w: &mut Writer) {
        self.positions().to_vec().persist(w);
        self.range().persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let positions = Vec::restore(r)?;
        let range: f64 = f64::restore(r)?;
        // `partial_cmp` keeps the NaN rejection explicit.
        if range.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(CheckpointError::Corrupt("non-positive radio range"));
        }
        Ok(crate::topology::Topology::from_positions(positions, range))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = Writer::new();
        value.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::restore(&mut r).expect("restore");
        assert_eq!(back, value);
        assert_eq!(r.remaining(), 0, "nothing left over");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(-7i32);
        round_trip(i64::MIN);
        round_trip(true);
        round_trip(false);
        round_trip(-0.0f64);
        round_trip(f64::MAX);
        round_trip(String::from("snapshot"));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(Some(7u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![1u32, 2, 3]);
        round_trip((1u32, 2u64));
        round_trip((1u32, 2u64, true));
        round_trip(BTreeMap::from([(1u32, 10u64), (2, 20)]));
        round_trip(BTreeSet::from([NodeId(3), NodeId(1)]));
        round_trip(HashMap::from([(5u64, 50u32), (1, 10)]));
    }

    #[test]
    fn hashmap_encoding_is_order_independent() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for i in 0..50u32 {
            a.insert(i, i * 3);
        }
        for i in (0..50u32).rev() {
            b.insert(i, i * 3);
        }
        let (mut wa, mut wb) = (Writer::new(), Writer::new());
        a.persist(&mut wa);
        b.persist(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn header_round_trip_and_rejection() {
        let mut w = Writer::new();
        write_header(&mut w);
        let bytes = w.into_bytes();
        assert!(read_header(&mut Reader::new(&bytes)).is_ok());

        assert_eq!(
            read_header(&mut Reader::new(b"NOTACKPT\0\0\0\x01")),
            Err(CheckpointError::BadMagic)
        );
        let mut future = Writer::new();
        future.put_bytes(&MAGIC);
        future.put_u32(FORMAT_VERSION + 1);
        assert_eq!(
            read_header(&mut Reader::new(&future.into_bytes())),
            Err(CheckpointError::UnsupportedVersion(FORMAT_VERSION + 1))
        );
        // Mutual rejection across the v1 → v2 bump: a snapshot written
        // by the pre-adaptive format must be refused by name, not
        // misread (its FdsNode encoding lacks the adaptive fields).
        let mut v1 = Writer::new();
        v1.put_bytes(&MAGIC);
        v1.put_u32(1);
        assert_eq!(
            read_header(&mut Reader::new(&v1.into_bytes())),
            Err(CheckpointError::UnsupportedVersion(1))
        );
        assert_eq!(
            read_header(&mut Reader::new(b"CB")),
            Err(CheckpointError::Truncated)
        );
    }

    #[test]
    fn truncation_is_detected_not_panicked() {
        let mut w = Writer::new();
        vec![1u64, 2, 3].persist(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(Vec::<u64>::restore(&mut Reader::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn lying_vec_length_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(Vec::<u8>::restore(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn rng_round_trip_continues_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..31 {
            rng.next_u64();
        }
        let mut w = Writer::new();
        rng.persist(&mut w);
        let bytes = w.into_bytes();
        let mut restored = StdRng::restore(&mut Reader::new(&bytes)).unwrap();
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn topology_round_trip_preserves_adjacency() {
        use crate::geometry::Point;
        let topo = crate::topology::Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(60.0, 0.0),
                Point::new(300.0, 0.0),
            ],
            100.0,
        );
        let mut w = Writer::new();
        topo.persist(&mut w);
        let bytes = w.into_bytes();
        let back = crate::topology::Topology::restore(&mut Reader::new(&bytes)).unwrap();
        for n in topo.node_ids() {
            assert_eq!(back.neighbors(n), topo.neighbors(n));
        }
    }
}
