//! Message-traffic accounting.
//!
//! The paper's design choices (implicit acknowledgments, "no news is
//! good news" suppression, peer forwarding instead of clusterhead
//! retransmission) are all motivated by transmission cost; these
//! counters let experiments compare protocols by the traffic they
//! generate.

use crate::id::NodeId;
use serde::{Deserialize, Serialize};

/// Counters accumulated by the simulator over one run.
///
/// # Examples
///
/// ```
/// use cbfd_net::metrics::SimMetrics;
/// use cbfd_net::id::NodeId;
///
/// let mut m = SimMetrics::new(2);
/// m.record_transmission(NodeId(0), 1);
/// m.record_delivery();
/// assert_eq!(m.transmissions, 1);
/// assert_eq!(m.delivery_ratio(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Number of transmissions (each heard by many receivers).
    pub transmissions: u64,
    /// Copies that reached a receiver.
    pub deliveries: u64,
    /// Copies lost on the channel.
    pub losses: u64,
    /// Copies addressed to nodes that had crashed.
    pub dropped_dead: u64,
    /// Timers that fired.
    pub timers_fired: u64,
    /// Per-node transmission counts, indexed by `NodeId::index()`.
    pub tx_per_node: Vec<u64>,
}

impl SimMetrics {
    /// Creates zeroed counters for `n` nodes.
    pub fn new(n: usize) -> Self {
        SimMetrics {
            transmissions: 0,
            deliveries: 0,
            losses: 0,
            dropped_dead: 0,
            timers_fired: 0,
            tx_per_node: vec![0; n],
        }
    }

    /// Records one transmission by `from` that will be offered to
    /// `receivers` in-range neighbours.
    pub fn record_transmission(&mut self, from: NodeId, receivers: usize) {
        let _ = receivers;
        self.transmissions += 1;
        if let Some(slot) = self.tx_per_node.get_mut(from.index()) {
            *slot += 1;
        }
    }

    /// Records one successfully delivered copy.
    pub fn record_delivery(&mut self) {
        self.deliveries += 1;
    }

    /// Records one copy lost on the channel.
    pub fn record_loss(&mut self) {
        self.losses += 1;
    }

    /// Records one copy suppressed because the receiver had crashed.
    pub fn record_dropped_dead(&mut self) {
        self.dropped_dead += 1;
    }

    /// Records a fired timer.
    pub fn record_timer(&mut self) {
        self.timers_fired += 1;
    }

    /// Fraction of offered copies that were delivered; `1.0` when no
    /// copy was ever offered.
    pub fn delivery_ratio(&self) -> f64 {
        let offered = self.deliveries + self.losses;
        if offered == 0 {
            1.0
        } else {
            self.deliveries as f64 / offered as f64
        }
    }

    /// The heaviest transmitter and its transmission count, if any
    /// node transmitted.
    pub fn busiest_node(&self) -> Option<(NodeId, u64)> {
        self.tx_per_node
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, &c)| (NodeId(i as u32), c))
    }
}

crate::impl_persist!(SimMetrics {
    transmissions,
    deliveries,
    losses,
    dropped_dead,
    timers_fired,
    tx_per_node,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = SimMetrics::new(3);
        m.record_transmission(NodeId(1), 2);
        m.record_transmission(NodeId(1), 2);
        m.record_delivery();
        m.record_loss();
        m.record_dropped_dead();
        m.record_timer();
        assert_eq!(m.transmissions, 2);
        assert_eq!(m.tx_per_node, vec![0, 2, 0]);
        assert_eq!(m.deliveries, 1);
        assert_eq!(m.losses, 1);
        assert_eq!(m.dropped_dead, 1);
        assert_eq!(m.timers_fired, 1);
    }

    #[test]
    fn delivery_ratio_handles_zero() {
        assert_eq!(SimMetrics::new(0).delivery_ratio(), 1.0);
        let mut m = SimMetrics::new(1);
        m.record_delivery();
        m.record_delivery();
        m.record_loss();
        assert!((m.delivery_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn busiest_node_picks_max_and_lowest_id_on_tie() {
        let mut m = SimMetrics::new(4);
        assert_eq!(m.busiest_node(), None);
        m.record_transmission(NodeId(2), 0);
        m.record_transmission(NodeId(3), 0);
        m.record_transmission(NodeId(3), 0);
        assert_eq!(m.busiest_node(), Some((NodeId(3), 2)));
        m.record_transmission(NodeId(2), 0);
        assert_eq!(
            m.busiest_node(),
            Some((NodeId(2), 2)),
            "lowest ID wins ties"
        );
    }

    #[test]
    fn out_of_range_transmitter_is_tolerated() {
        let mut m = SimMetrics::new(1);
        m.record_transmission(NodeId(9), 0);
        assert_eq!(m.transmissions, 1);
        assert_eq!(m.tx_per_node, vec![0]);
    }
}
