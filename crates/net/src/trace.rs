//! Optional event tracing for debugging protocol runs.
//!
//! Tracing is off by default (simulations at paper scale generate
//! millions of events); when enabled, the simulator records a compact
//! [`TraceRecord`] per radio/timer/crash event which tests and tools
//! can assert against or pretty-print.

use crate::checkpoint::{CheckpointError, Persist, Reader, Writer};
use crate::id::NodeId;
use crate::time::SimTime;
use std::fmt;

/// What happened at one traced instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// `node` transmitted a message.
    Transmit,
    /// A copy from `peer` reached `node`.
    Receive,
    /// A copy from `peer` to `node` was lost on the channel.
    Loss,
    /// A timer fired at `node`.
    Timer,
    /// `node` crashed (fail-stop).
    Crash,
    /// A dormant `node` joined the network (late arrival).
    Join,
    /// `node` withdrew gracefully.
    Leave,
    /// A crashed or departed `node` came back.
    Rejoin,
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// When it happened.
    pub at: SimTime,
    /// The node the record is about.
    pub node: NodeId,
    /// The counterpart node for radio events (`node` itself otherwise).
    pub peer: NodeId,
    /// The event class.
    pub kind: TraceKind,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TraceKind::Transmit => write!(f, "[{}] {} tx", self.at, self.node),
            TraceKind::Receive => write!(f, "[{}] {} rx from {}", self.at, self.node, self.peer),
            TraceKind::Loss => write!(f, "[{}] {} lost from {}", self.at, self.node, self.peer),
            TraceKind::Timer => write!(f, "[{}] {} timer", self.at, self.node),
            TraceKind::Crash => write!(f, "[{}] {} crash", self.at, self.node),
            TraceKind::Join => write!(f, "[{}] {} join", self.at, self.node),
            TraceKind::Leave => write!(f, "[{}] {} leave", self.at, self.node),
            TraceKind::Rejoin => write!(f, "[{}] {} rejoin", self.at, self.node),
        }
    }
}

/// A bounded in-memory event trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    records: Vec<TraceRecord>,
    dropped: u64,
}

impl Trace {
    /// Default bound on retained records.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// Creates an enabled trace retaining at most `capacity` records;
    /// further records are counted but dropped.
    pub fn bounded(capacity: usize) -> Self {
        Trace {
            enabled: true,
            capacity,
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// Creates an enabled trace with the default capacity.
    pub fn enabled() -> Self {
        Trace::bounded(Self::DEFAULT_CAPACITY)
    }

    /// Whether records are being kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record (no-op when disabled or full).
    ///
    /// Inlined so the disabled check folds into the caller's
    /// `is_enabled()` guard — a disabled trace costs one predictable
    /// branch per event, never a call.
    #[inline]
    pub fn push(&mut self, record: TraceRecord) {
        if !self.enabled {
            return;
        }
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// Bulk append: one enabled-check and one capacity computation for
    /// the whole batch, instead of a check per record. The tiled
    /// engine's barrier merge feeds entire per-tile runs through this;
    /// records past the capacity are counted as dropped, exactly as
    /// [`Trace::push`] would have.
    pub fn extend(&mut self, records: impl IntoIterator<Item = TraceRecord>) {
        if !self.enabled {
            return;
        }
        let mut it = records.into_iter();
        let room = self.capacity.saturating_sub(self.records.len());
        self.records.extend(it.by_ref().take(room));
        self.dropped += it.count() as u64;
    }

    /// The retained records, in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records dropped after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained records concerning `node`.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.node == node)
    }

    /// Renders the retained records as one line per event (for log
    /// files and debugging sessions).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!("... {} further records dropped\n", self.dropped));
        }
        out
    }
}

impl Persist for TraceKind {
    fn persist(&self, w: &mut Writer) {
        w.put_u8(match self {
            TraceKind::Transmit => 0,
            TraceKind::Receive => 1,
            TraceKind::Loss => 2,
            TraceKind::Timer => 3,
            TraceKind::Crash => 4,
            TraceKind::Join => 5,
            TraceKind::Leave => 6,
            TraceKind::Rejoin => 7,
        });
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(match r.get_u8()? {
            0 => TraceKind::Transmit,
            1 => TraceKind::Receive,
            2 => TraceKind::Loss,
            3 => TraceKind::Timer,
            4 => TraceKind::Crash,
            5 => TraceKind::Join,
            6 => TraceKind::Leave,
            7 => TraceKind::Rejoin,
            _ => return Err(CheckpointError::Corrupt("trace kind tag")),
        })
    }
}

crate::impl_persist!(TraceRecord {
    at,
    node,
    peer,
    kind
});
crate::impl_persist!(Trace {
    enabled,
    capacity,
    records,
    dropped,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_us: u64, node: u32, kind: TraceKind) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_micros(at_us),
            node: NodeId(node),
            peer: NodeId(node),
            kind,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(rec(1, 0, TraceKind::Transmit));
        assert!(t.records().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_keeps_order() {
        let mut t = Trace::enabled();
        t.push(rec(1, 0, TraceKind::Transmit));
        t.push(rec(2, 1, TraceKind::Receive));
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[0].kind, TraceKind::Transmit);
    }

    #[test]
    fn extend_appends_in_order_and_respects_capacity() {
        let mut t = Trace::enabled();
        t.extend([
            rec(1, 0, TraceKind::Transmit),
            rec(2, 1, TraceKind::Receive),
        ]);
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[1].kind, TraceKind::Receive);
        assert_eq!(t.dropped(), 0);

        // Capacity clamp: the overflow is counted, the prefix kept.
        let mut b = Trace::bounded(3);
        b.push(rec(1, 0, TraceKind::Timer));
        b.extend((2..=6).map(|i| rec(i, 0, TraceKind::Timer)));
        assert_eq!(b.records().len(), 3);
        assert_eq!(b.records()[2].at, SimTime::from_micros(3));
        assert_eq!(b.dropped(), 3);

        // Disabled: nothing recorded, nothing counted.
        let mut d = Trace::disabled();
        d.extend([rec(1, 0, TraceKind::Crash)]);
        assert!(d.records().is_empty());
        assert_eq!(d.dropped(), 0);
    }

    #[test]
    fn bounded_trace_counts_drops() {
        let mut t = Trace::bounded(1);
        t.push(rec(1, 0, TraceKind::Timer));
        t.push(rec(2, 0, TraceKind::Timer));
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn for_node_filters() {
        let mut t = Trace::enabled();
        t.push(rec(1, 0, TraceKind::Transmit));
        t.push(rec(2, 1, TraceKind::Transmit));
        t.push(rec(3, 0, TraceKind::Crash));
        assert_eq!(t.for_node(NodeId(0)).count(), 2);
        assert_eq!(t.for_node(NodeId(1)).count(), 1);
    }

    #[test]
    fn render_produces_one_line_per_event() {
        let mut t = Trace::bounded(2);
        t.push(rec(1, 0, TraceKind::Transmit));
        t.push(rec(2, 1, TraceKind::Receive));
        t.push(rec(3, 1, TraceKind::Timer));
        let text = t.render();
        assert_eq!(text.lines().count(), 3, "{text}");
        assert!(text.contains("dropped"));
        assert!(Trace::disabled().render().is_empty());
    }

    #[test]
    fn display_formats_each_kind() {
        let kinds = [
            TraceKind::Transmit,
            TraceKind::Receive,
            TraceKind::Loss,
            TraceKind::Timer,
            TraceKind::Crash,
            TraceKind::Join,
            TraceKind::Leave,
            TraceKind::Rejoin,
        ];
        for k in kinds {
            let s = rec(5, 3, k).to_string();
            assert!(s.contains("n3"), "{s}");
        }
    }
}
