//! The discrete-event queue: a hierarchical calendar queue.
//!
//! # Ordering contract
//!
//! Events are ordered by `(time, sequence)`: ties at the same virtual
//! instant are broken by **insertion order**, which makes every
//! simulation run fully deterministic for a given seed. This contract
//! is load-bearing — the thread-count-invariance and golden-value
//! suites pin byte-identical outputs to it — and is enforced by the
//! property tests in `tests/event_properties.rs` against a
//! `BinaryHeap` reference model.
//!
//! # Structure
//!
//! The queue is a two-tier **calendar queue** tuned for the paper's
//! broadcast-dominated workload, where almost every scheduled event is
//! a message delivery a few hundred microseconds to a few milliseconds
//! in the future:
//!
//! * a **ring of [`SLOT_COUNT`] one-microsecond buckets** covering the
//!   near future `[base, base + SLOT_COUNT)`. Because each bucket holds
//!   exactly one virtual instant, a bucket is a plain FIFO list —
//!   insertion order *is* sequence order — so schedule and pop are
//!   amortized O(1). Buckets are singly-linked lists threaded through a
//!   recycled entry pool (no per-event allocation in steady state), and
//!   a two-level **hierarchical bitmap** (one bit per bucket, one
//!   summary bit per 64 buckets) finds the next occupied bucket with a
//!   handful of word scans instead of walking empty buckets;
//! * a **`BinaryHeap` overflow tier** for events beyond the ring's
//!   horizon (far-future timers such as multi-second heartbeat
//!   intervals) and for the rare event scheduled before `base` (the
//!   public API permits scheduling in the "past" relative to the last
//!   pop; the simulator itself never does).
//!
//! `pop` is a two-way merge of the ring's earliest bucket and the heap
//! top by `(time, sequence)`, so an event's tier never affects its
//! order. The ring's `base` only advances (to each popped event's
//! time); entries keep their bucket across advances because bucket
//! indices are computed relative to `(base, cursor)`.

use crate::id::NodeId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind<M> {
    /// Delivery of message `msg` from `from` to `to`.
    Deliver {
        /// Receiving node.
        to: NodeId,
        /// Transmitting node.
        from: NodeId,
        /// The payload.
        msg: M,
    },
    /// A timer set by `node` fires with the actor-chosen `token`.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Actor-defined discriminator.
        token: u64,
        /// Simulator-assigned instance stamp (the simulator packs a
        /// timer-slab slot and generation in here so that cancellation
        /// is exact; opaque at this layer).
        id: u64,
    },
    /// Fail-stop crash of `node`.
    Crash {
        /// Crashing node.
        node: NodeId,
    },
    /// First activation of a dormant (not-yet-started) `node`.
    Join {
        /// Joining node.
        node: NodeId,
    },
    /// Graceful, announced withdrawal of `node` (no failure).
    Leave {
        /// Leaving node.
        node: NodeId,
    },
    /// Reactivation of a crashed or departed `node`, carrying whatever
    /// stale state it had when it went down.
    Rejoin {
        /// Rejoining node.
        node: NodeId,
    },
}

#[derive(Debug)]
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops
        // first, then the lowest sequence number.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Number of one-microsecond buckets in the calendar ring (131 ms of
/// horizon): wide enough for every radio delivery delay, the FDS
/// `Thop`-scale round timers, *and* the ~100 ms epoch/heartbeat
/// intervals of every protocol in the workspace; only seconds-scale
/// timers overflow to the heap tier. Costs ~1 MiB per queue, which a
/// simulation instance amortizes over its whole run.
pub const SLOT_COUNT: usize = 1 << 17;

/// Sentinel for "no entry" in the intrusive bucket lists.
const NIL: u32 = u32::MAX;

/// One pooled event in a ring bucket. `kind` is `None` only while the
/// entry sits on the free list.
#[derive(Debug)]
struct Entry<M> {
    at: SimTime,
    seq: u64,
    kind: Option<EventKind<M>>,
    next: u32,
}

/// A deterministic priority queue of simulation events.
///
/// See the [module docs](self) for the ordering contract and the
/// calendar-queue internals.
///
/// # Examples
///
/// ```
/// use cbfd_net::event::{EventKind, EventQueue};
/// use cbfd_net::id::NodeId;
/// use cbfd_net::time::SimTime;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), EventKind::Timer { node: NodeId(0), token: 1, id: 0 });
/// q.schedule(SimTime::from_millis(1), EventKind::Timer { node: NodeId(0), token: 2, id: 1 });
/// let (at, kind) = q.pop().unwrap();
/// assert_eq!(at, SimTime::from_millis(1));
/// assert_eq!(kind, EventKind::Timer { node: NodeId(0), token: 2, id: 1 });
/// ```
#[derive(Debug)]
pub struct EventQueue<M> {
    /// Bucket list heads/tails, indexed by ring slot.
    heads: Vec<u32>,
    tails: Vec<u32>,
    /// One bit per slot: bucket non-empty.
    occupied: Vec<u64>,
    /// One bit per `occupied` word: word non-zero.
    summary: Vec<u64>,
    /// Entry pool; freed entries are chained through `next`.
    pool: Vec<Entry<M>>,
    free_head: u32,
    /// Absolute time (µs) of the slot at `cursor`.
    base: u64,
    cursor: usize,
    ring_len: usize,
    /// Far-future (and behind-`base`) events.
    overflow: BinaryHeap<Scheduled<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heads: vec![NIL; SLOT_COUNT],
            tails: vec![NIL; SLOT_COUNT],
            occupied: vec![0; SLOT_COUNT / 64],
            summary: vec![0; SLOT_COUNT / 64 / 64],
            pool: Vec::new(),
            free_head: NIL,
            base: 0,
            cursor: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` to fire at `at`.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert_with_seq(at, seq, kind);
    }

    /// Inserts an event with an explicit sequence number — the restore
    /// path, where tie-break order must match the original run.
    #[inline]
    fn insert_with_seq(&mut self, at: SimTime, seq: u64, kind: EventKind<M>) {
        let t = at.as_micros();
        if t >= self.base && t - self.base < SLOT_COUNT as u64 {
            let slot = (self.cursor + (t - self.base) as usize) & (SLOT_COUNT - 1);
            let idx = self.alloc_entry(at, seq, kind);
            if self.tails[slot] == NIL {
                self.heads[slot] = idx;
                self.set_bit(slot);
            } else {
                self.pool[self.tails[slot] as usize].next = idx;
            }
            self.tails[slot] = idx;
            self.ring_len += 1;
        } else {
            self.overflow.push(Scheduled { at, seq, kind });
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind<M>)> {
        self.pop_at_or_before(SimTime::from_micros(u64::MAX))
    }

    /// Removes and returns the earliest event iff it fires at or
    /// before `deadline`; a single scan replaces the peek-then-pop
    /// pattern on the simulator's main loop.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, EventKind<M>)> {
        let ring = self.first_occupied_slot().map(|slot| {
            let head = self.heads[slot] as usize;
            (self.pool[head].at, self.pool[head].seq, slot)
        });
        let heap = self.overflow.peek().map(|s| (s.at, s.seq));
        match (ring, heap) {
            (None, None) => None,
            (Some((at, _, slot)), None) => (at <= deadline).then(|| (at, self.pop_ring(slot))),
            (None, Some((at, _))) => {
                if at <= deadline {
                    self.pop_overflow()
                } else {
                    None
                }
            }
            (Some((rat, rseq, slot)), Some((hat, hseq))) => {
                if (rat, rseq) <= (hat, hseq) {
                    (rat <= deadline).then(|| (rat, self.pop_ring(slot)))
                } else if hat <= deadline {
                    self.pop_overflow()
                } else {
                    None
                }
            }
        }
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        let ring = self
            .first_occupied_slot()
            .map(|slot| self.pool[self.heads[slot] as usize].at);
        let heap = self.overflow.peek().map(|s| s.at);
        match (ring, heap) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Returns true iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ----------------------------------------------------- internals

    #[inline]
    fn alloc_entry(&mut self, at: SimTime, seq: u64, kind: EventKind<M>) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let e = &mut self.pool[idx as usize];
            self.free_head = e.next;
            e.at = at;
            e.seq = seq;
            e.kind = Some(kind);
            e.next = NIL;
            idx
        } else {
            let idx = self.pool.len() as u32;
            self.pool.push(Entry {
                at,
                seq,
                kind: Some(kind),
                next: NIL,
            });
            idx
        }
    }

    #[inline]
    fn pop_ring(&mut self, slot: usize) -> EventKind<M> {
        let idx = self.heads[slot];
        let e = &mut self.pool[idx as usize];
        let at = e.at;
        let next = e.next;
        let kind = e.kind.take().expect("live ring entry has a kind");
        e.next = self.free_head;
        self.free_head = idx;
        self.heads[slot] = next;
        if next == NIL {
            self.tails[slot] = NIL;
            self.clear_bit(slot);
        }
        self.ring_len -= 1;
        self.advance_to(at.as_micros(), slot);
        kind
    }

    fn pop_overflow(&mut self) -> Option<(SimTime, EventKind<M>)> {
        let s = self.overflow.pop()?;
        let t = s.at.as_micros();
        if t > self.base {
            let d = t - self.base;
            let slot = ((self.cursor as u64 + d) % SLOT_COUNT as u64) as usize;
            self.advance_to(t, slot);
        }
        Some((s.at, s.kind))
    }

    /// Moves the ring origin forward to time `t` at ring `slot`.
    /// Entries keep their buckets: an event at absolute time `x` lives
    /// in slot `(cursor + (x - base)) mod SLOT_COUNT`, which is
    /// invariant under simultaneous `(base, cursor)` advancement.
    #[inline]
    fn advance_to(&mut self, t: u64, slot: usize) {
        self.base = t;
        self.cursor = slot;
    }

    #[inline]
    fn set_bit(&mut self, slot: usize) {
        let w = slot >> 6;
        self.occupied[w] |= 1u64 << (slot & 63);
        self.summary[w >> 6] |= 1u64 << (w & 63);
    }

    #[inline]
    fn clear_bit(&mut self, slot: usize) {
        let w = slot >> 6;
        self.occupied[w] &= !(1u64 << (slot & 63));
        if self.occupied[w] == 0 {
            self.summary[w >> 6] &= !(1u64 << (w & 63));
        }
    }

    /// The ring slot holding the earliest pending ring event, i.e. the
    /// first occupied slot at or after `cursor` in circular order.
    #[inline]
    fn first_occupied_slot(&self) -> Option<usize> {
        if self.ring_len == 0 {
            return None;
        }
        // No bits in [cursor, SLOT_COUNT) means the earliest slot
        // wrapped around and sits in [0, cursor).
        self.scan_from(self.cursor).or_else(|| self.scan_from(0))
    }

    /// First occupied slot in `[from, SLOT_COUNT)`, via the bitmap
    /// hierarchy: one masked word probe, then summary-guided scan.
    #[inline]
    fn scan_from(&self, from: usize) -> Option<usize> {
        let w0 = from >> 6;
        let bits = self.occupied[w0] & (!0u64 << (from & 63));
        if bits != 0 {
            return Some((w0 << 6) + bits.trailing_zeros() as usize);
        }
        let next_word = w0 + 1;
        if next_word >= self.occupied.len() {
            return None;
        }
        let mut sw = next_word >> 6;
        let mut sbits = self.summary[sw] & (!0u64 << (next_word & 63));
        loop {
            if sbits != 0 {
                let w = (sw << 6) + sbits.trailing_zeros() as usize;
                let b = self.occupied[w];
                return Some((w << 6) + b.trailing_zeros() as usize);
            }
            sw += 1;
            if sw >= self.summary.len() {
                return None;
            }
            sbits = self.summary[sw];
        }
    }
}

impl<M: Clone> EventQueue<M> {
    /// Every pending event as `(at, seq, kind)`, sorted by the queue's
    /// ordering contract `(time, sequence)` — the logical content of
    /// the queue, independent of which tier each event currently sits
    /// in.
    pub fn snapshot_entries(&self) -> Vec<(SimTime, u64, EventKind<M>)> {
        let mut out: Vec<(SimTime, u64, EventKind<M>)> = self
            .pool
            .iter()
            .filter_map(|e| e.kind.as_ref().map(|k| (e.at, e.seq, k.clone())))
            .chain(self.overflow.iter().map(|s| (s.at, s.seq, s.kind.clone())))
            .collect();
        out.sort_by_key(|&(at, seq, _)| (at, seq));
        out
    }
}

impl<M> EventQueue<M> {
    /// Rebuilds a queue from a [`EventQueue::snapshot_entries`] dump.
    ///
    /// `base` anchors the calendar ring (the snapshotting run's ring
    /// origin); `next_seq` continues the tie-break counter so events
    /// scheduled after the restore sort exactly as they would have in
    /// the uninterrupted run. Entries must be sorted by `(at, seq)` —
    /// within one ring bucket insertion order is sequence order, which
    /// the sorted dump reproduces.
    pub fn from_parts(
        base: u64,
        next_seq: u64,
        entries: Vec<(SimTime, u64, EventKind<M>)>,
    ) -> Self {
        let mut q = EventQueue::new();
        q.base = base;
        for (at, seq, kind) in entries {
            q.insert_with_seq(at, seq, kind);
        }
        q.next_seq = next_seq;
        q
    }

    /// The ring origin in microseconds (exposed for checkpointing).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The next insertion sequence number (exposed for checkpointing).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

impl<M: crate::checkpoint::Persist> crate::checkpoint::Persist for EventKind<M> {
    fn persist(&self, w: &mut crate::checkpoint::Writer) {
        match self {
            EventKind::Deliver { to, from, msg } => {
                w.put_u8(0);
                to.persist(w);
                from.persist(w);
                msg.persist(w);
            }
            EventKind::Timer { node, token, id } => {
                w.put_u8(1);
                node.persist(w);
                token.persist(w);
                id.persist(w);
            }
            EventKind::Crash { node } => {
                w.put_u8(2);
                node.persist(w);
            }
            EventKind::Join { node } => {
                w.put_u8(3);
                node.persist(w);
            }
            EventKind::Leave { node } => {
                w.put_u8(4);
                node.persist(w);
            }
            EventKind::Rejoin { node } => {
                w.put_u8(5);
                node.persist(w);
            }
        }
    }

    fn restore(
        r: &mut crate::checkpoint::Reader<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        Ok(match r.get_u8()? {
            0 => EventKind::Deliver {
                to: NodeId::restore(r)?,
                from: NodeId::restore(r)?,
                msg: M::restore(r)?,
            },
            1 => EventKind::Timer {
                node: NodeId::restore(r)?,
                token: u64::restore(r)?,
                id: u64::restore(r)?,
            },
            2 => EventKind::Crash {
                node: NodeId::restore(r)?,
            },
            3 => EventKind::Join {
                node: NodeId::restore(r)?,
            },
            4 => EventKind::Leave {
                node: NodeId::restore(r)?,
            },
            5 => EventKind::Rejoin {
                node: NodeId::restore(r)?,
            },
            _ => {
                return Err(crate::checkpoint::CheckpointError::Corrupt(
                    "event kind tag",
                ))
            }
        })
    }
}

impl<M: crate::checkpoint::Persist + Clone> crate::checkpoint::Persist for EventQueue<M> {
    fn persist(&self, w: &mut crate::checkpoint::Writer) {
        self.base.persist(w);
        self.next_seq.persist(w);
        self.snapshot_entries().persist(w);
    }

    fn restore(
        r: &mut crate::checkpoint::Reader<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        let base = u64::restore(r)?;
        let next_seq = u64::restore(r)?;
        let entries = Vec::restore(r)?;
        Ok(EventQueue::from_parts(base, next_seq, entries))
    }
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(token: u64) -> EventKind<()> {
        EventKind::Timer {
            node: NodeId(0),
            token,
            id: token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), timer(3));
        q.schedule(SimTime::from_micros(10), timer(1));
        q.schedule(SimTime::from_micros(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for token in 0..10 {
            q.schedule(t, timer(token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_micros(9), timer(0));
        q.schedule(SimTime::from_micros(4), timer(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(4)));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, timer(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn deliver_events_carry_payload() {
        let mut q = EventQueue::new();
        q.schedule(
            SimTime::ZERO,
            EventKind::Deliver {
                to: NodeId(1),
                from: NodeId(2),
                msg: "hello",
            },
        );
        match q.pop().unwrap().1 {
            EventKind::Deliver { to, from, msg } => {
                assert_eq!(to, NodeId(1));
                assert_eq!(from, NodeId(2));
                assert_eq!(msg, "hello");
            }
            _ => panic!("expected deliver"),
        }
    }

    #[test]
    fn far_future_events_overflow_and_merge_back() {
        let mut q = EventQueue::new();
        // Beyond the ring horizon → heap tier.
        let far = SimTime::from_micros(SLOT_COUNT as u64 * 3 + 17);
        q.schedule(far, timer(1));
        // Near-future → ring tier.
        q.schedule(SimTime::from_micros(5), timer(0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5)));
        assert_eq!(q.pop().unwrap().0, SimTime::from_micros(5));
        // The overflow event now pops through the merge.
        let (at, kind) = q.pop().unwrap();
        assert_eq!(at, far);
        assert_eq!(kind, timer(1));
        assert!(q.is_empty());
    }

    #[test]
    fn ties_across_tiers_respect_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(SLOT_COUNT as u64 + 100);
        // First insertion lands in the heap (beyond horizon)...
        q.schedule(t, timer(0));
        // ...advance the ring past the horizon boundary...
        q.schedule(SimTime::from_micros(200), timer(99));
        q.pop();
        // ...so the same instant now lands in the ring.
        q.schedule(t, timer(1));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            order,
            vec![0, 1],
            "heap-tier tie must pop first (lower seq)"
        );
    }

    #[test]
    fn scheduling_before_the_last_pop_still_pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1_000), timer(0));
        q.pop();
        // "Past" relative to the ring base: takes the overflow path.
        q.schedule(SimTime::from_micros(3), timer(1));
        q.schedule(SimTime::from_micros(1_500), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn pool_entries_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..10 {
                q.schedule(SimTime::from_micros(round * 20 + i), timer(i));
            }
            while q.pop().is_some() {}
        }
        assert!(
            q.pool.len() <= 10,
            "pool grew to {} entries for 10 concurrent events",
            q.pool.len()
        );
    }

    #[test]
    fn wrapping_the_ring_preserves_order() {
        // Events spread over several horizons: popping them drains the
        // ring and the overflow tier through the two-way merge while
        // the cursor wraps repeatedly.
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        let mut x = 12345u64;
        for i in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = x % (SLOT_COUNT as u64 * 5);
            q.schedule(SimTime::from_micros(t), timer(i));
            expected.push((t, i));
        }
        expected.sort_by_key(|&(t, _)| t); // stable → seq order on ties
        let mut got = Vec::new();
        while let Some((at, kind)) = q.pop() {
            match kind {
                EventKind::Timer { token, .. } => got.push((at.as_micros(), token)),
                _ => unreachable!(),
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn snapshot_mid_drain_restores_identical_pop_order() {
        // Schedule across both tiers, drain part way, snapshot, and
        // check the rebuilt queue pops the exact same remainder — then
        // keeps identical tie-break behavior for *new* events.
        let mut q = EventQueue::new();
        let mut x = 777u64;
        for i in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = x % (SLOT_COUNT as u64 * 3);
            q.schedule(SimTime::from_micros(t), timer(i));
        }
        for _ in 0..200 {
            q.pop();
        }
        let mut restored = EventQueue::from_parts(q.base(), q.next_seq(), q.snapshot_entries());
        assert_eq!(restored.len(), q.len());
        // New events in both queues get the same sequence numbers.
        let t = q.peek_time().unwrap();
        q.schedule(t, timer(9_999));
        restored.schedule(t, timer(9_999));
        loop {
            let a = q.pop();
            let b = restored.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
