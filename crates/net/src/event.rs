//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: ties at the same virtual
//! instant are broken by insertion order, which makes every simulation
//! run fully deterministic for a given seed.

use crate::id::NodeId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind<M> {
    /// Delivery of message `msg` from `from` to `to`.
    Deliver {
        /// Receiving node.
        to: NodeId,
        /// Transmitting node.
        from: NodeId,
        /// The payload.
        msg: M,
    },
    /// A timer set by `node` fires with the actor-chosen `token`.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Actor-defined discriminator.
        token: u64,
        /// Simulator-assigned unique instance id (distinguishes
        /// multiple pending timers with the same token so that
        /// cancellation is exact).
        id: u64,
    },
    /// Fail-stop crash of `node`.
    Crash {
        /// Crashing node.
        node: NodeId,
    },
}

#[derive(Debug)]
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops
        // first, then the lowest sequence number.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic priority queue of simulation events.
///
/// # Examples
///
/// ```
/// use cbfd_net::event::{EventKind, EventQueue};
/// use cbfd_net::id::NodeId;
/// use cbfd_net::time::SimTime;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), EventKind::Timer { node: NodeId(0), token: 1, id: 0 });
/// q.schedule(SimTime::from_millis(1), EventKind::Timer { node: NodeId(0), token: 2, id: 1 });
/// let (at, kind) = q.pop().unwrap();
/// assert_eq!(at, SimTime::from_millis(1));
/// assert_eq!(kind, EventKind::Timer { node: NodeId(0), token: 2, id: 1 });
/// ```
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Scheduled<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, kind });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind<M>)> {
        self.heap.pop().map(|s| (s.at, s.kind))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(token: u64) -> EventKind<()> {
        EventKind::Timer {
            node: NodeId(0),
            token,
            id: token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), timer(3));
        q.schedule(SimTime::from_micros(10), timer(1));
        q.schedule(SimTime::from_micros(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for token in 0..10 {
            q.schedule(t, timer(token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_micros(9), timer(0));
        q.schedule(SimTime::from_micros(4), timer(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(4)));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, timer(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn deliver_events_carry_payload() {
        let mut q = EventQueue::new();
        q.schedule(
            SimTime::ZERO,
            EventKind::Deliver {
                to: NodeId(1),
                from: NodeId(2),
                msg: "hello",
            },
        );
        match q.pop().unwrap().1 {
            EventKind::Deliver { to, from, msg } => {
                assert_eq!(to, NodeId(1));
                assert_eq!(from, NodeId(2));
                assert_eq!(msg, "hello");
            }
            _ => panic!("expected deliver"),
        }
    }
}
