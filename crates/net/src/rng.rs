//! Deterministic randomness helpers.
//!
//! Every stochastic component of the substrate (placement, channel
//! loss, protocol back-off) draws from seeds derived from one master
//! seed, so a whole experiment is reproducible from a single `u64`.

/// One round of the SplitMix64 mixer.
///
/// Used to derive statistically independent child seeds from a master
/// seed and a salt; SplitMix64 is the standard generator for seeding
/// other PRNGs.
///
/// # Examples
///
/// ```
/// use cbfd_net::rng::splitmix64;
///
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(7), splitmix64(7));
/// ```
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from `master` and a `salt` identifying the
/// consumer (e.g. a node index or experiment replicate).
///
/// Distinct salts yield (with overwhelming probability) distinct,
/// well-mixed child seeds.
///
/// ```
/// use cbfd_net::rng::derive_seed;
///
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, 0));
/// ```
pub fn derive_seed(master: u64, salt: u64) -> u64 {
    splitmix64(master ^ splitmix64(salt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0xDEAD), splitmix64(0xDEAD));
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let seeds: HashSet<u64> = (0..10_000).map(|s| derive_seed(7, s)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn derived_seeds_differ_across_masters() {
        assert_ne!(derive_seed(1, 5), derive_seed(2, 5));
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value for seed 0 from the SplitMix64 paper's
        // canonical implementation.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }
}
