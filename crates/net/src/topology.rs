//! Unit-disk network topology.
//!
//! The paper models the network as a graph `G = (V, E)` in which a
//! link between `v` and `v'` exists iff each is within the other's
//! transmission range; all hosts share the same range `R`
//! (Section 2.2), so the graph is the **unit-disk graph** of the host
//! positions. [`Topology`] precomputes the adjacency lists used by the
//! radio model on every transmission.

use crate::geometry::Point;
use crate::id::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The static unit-disk graph over a set of host positions.
///
/// Node `i` is identified by `NodeId(i as u32)`; positions and
/// adjacency are indexed by `NodeId::index()`.
///
/// # Examples
///
/// ```
/// use cbfd_net::geometry::Point;
/// use cbfd_net::id::NodeId;
/// use cbfd_net::topology::Topology;
///
/// let topo = Topology::from_positions(
///     vec![Point::new(0.0, 0.0), Point::new(60.0, 0.0), Point::new(300.0, 0.0)],
///     100.0,
/// );
/// assert_eq!(topo.neighbors(NodeId(0)), &[NodeId(1)]);
/// assert!(topo.neighbors(NodeId(2)).is_empty()); // isolated
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    positions: Vec<Point>,
    range: f64,
    adjacency: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds the unit-disk graph of `positions` with transmission
    /// range `range`.
    ///
    /// Uses a uniform spatial grid with cells of side `range`, so only
    /// the 3×3 cell neighbourhood of each host is examined — linear in
    /// the host count at fixed density (the naive all-pairs scan is
    /// kept as [`Topology::from_positions_naive`] and property-tested
    /// equal).
    ///
    /// # Panics
    ///
    /// Panics if `range` is not strictly positive or a coordinate is
    /// not finite.
    pub fn from_positions(positions: Vec<Point>, range: f64) -> Self {
        assert!(range > 0.0, "transmission range must be positive");
        let n = positions.len();
        let mut adjacency = vec![Vec::new(); n];
        if n > 0 {
            assert!(
                positions.iter().all(|p| p.x.is_finite() && p.y.is_finite()),
                "positions must be finite"
            );
            // Bucket hosts into grid cells of side `range`.
            let min_x = positions.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
            let min_y = positions.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
            let cell = |p: &Point| -> (i64, i64) {
                (
                    ((p.x - min_x) / range).floor() as i64,
                    ((p.y - min_y) / range).floor() as i64,
                )
            };
            let mut buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
                std::collections::HashMap::new();
            for (i, p) in positions.iter().enumerate() {
                buckets.entry(cell(p)).or_default().push(i);
            }
            for (i, p) in positions.iter().enumerate() {
                let (cx, cy) = cell(p);
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        let Some(candidates) = buckets.get(&(cx + dx, cy + dy)) else {
                            continue;
                        };
                        for &j in candidates {
                            if j > i && p.in_range(positions[j], range) {
                                adjacency[i].push(NodeId(j as u32));
                                adjacency[j].push(NodeId(i as u32));
                            }
                        }
                    }
                }
            }
        }
        // Keep neighbour lists sorted so iteration order (and thus the
        // whole simulation) is deterministic.
        for list in &mut adjacency {
            list.sort_unstable();
        }
        Topology {
            positions,
            range,
            adjacency,
        }
    }

    /// The reference all-pairs construction (quadratic); used to
    /// validate the grid-accelerated [`Topology::from_positions`].
    pub fn from_positions_naive(positions: Vec<Point>, range: f64) -> Self {
        assert!(range > 0.0, "transmission range must be positive");
        let n = positions.len();
        let mut adjacency = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if positions[i].in_range(positions[j], range) {
                    adjacency[i].push(NodeId(j as u32));
                    adjacency[j].push(NodeId(i as u32));
                }
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        Topology {
            positions,
            range,
            adjacency,
        }
    }

    /// Number of hosts.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns true iff the topology has no hosts.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The common transmission range `R`.
    #[inline]
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }

    /// All host positions, indexed by `NodeId::index()`.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// One-hop neighbours of `node`, sorted by ID.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.index()]
    }

    /// Number of one-hop neighbours of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Returns true iff `a` and `b` are within each other's range.
    #[inline]
    pub fn linked(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.positions[a.index()].in_range(self.positions[b.index()], self.range)
    }

    /// Iterates over all node IDs.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// Hosts outside the transmission range of every other host
    /// ("isolated" nodes in the paper's terminology).
    pub fn isolated_nodes(&self) -> Vec<NodeId> {
        self.node_ids().filter(|n| self.degree(*n) == 0).collect()
    }

    /// Connected components of the graph, each sorted by ID; the list
    /// of components is sorted by its smallest member.
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut component = Vec::new();
            let mut queue = VecDeque::from([NodeId(start as u32)]);
            seen[start] = true;
            while let Some(v) = queue.pop_front() {
                component.push(v);
                for &w in self.neighbors(v) {
                    if !seen[w.index()] {
                        seen[w.index()] = true;
                        queue.push_back(w);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// Breadth-first hop distance from `from` to `to`, or `None` if
    /// unreachable.
    pub fn hop_distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.len()];
        dist[from.index()] = 0;
        let mut queue = VecDeque::from([from]);
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[v.index()] + 1;
                    if w == to {
                        return Some(dist[w.index()]);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// Average node degree — the paper's notion of population density
    /// at the graph level.
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.adjacency.iter().map(Vec::len).sum::<usize>() as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(spacing: f64, n: usize, range: f64) -> Topology {
        let pts = (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect();
        Topology::from_positions(pts, range)
    }

    #[test]
    fn links_are_symmetric_and_inclusive() {
        let t = line(100.0, 3, 100.0);
        assert!(t.linked(NodeId(0), NodeId(1)));
        assert!(t.linked(NodeId(1), NodeId(0)));
        assert!(!t.linked(NodeId(0), NodeId(2)));
        assert!(!t.linked(NodeId(0), NodeId(0)), "no self links");
    }

    #[test]
    fn neighbors_sorted_and_correct() {
        let t = line(50.0, 5, 100.0);
        assert_eq!(
            t.neighbors(NodeId(2)),
            &[NodeId(0), NodeId(1), NodeId(3), NodeId(4)]
        );
        assert_eq!(t.degree(NodeId(0)), 2);
    }

    #[test]
    fn isolated_nodes_detected() {
        let t =
            Topology::from_positions(vec![Point::new(0.0, 0.0), Point::new(1_000.0, 0.0)], 100.0);
        assert_eq!(t.isolated_nodes(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn connected_components_partition_nodes() {
        // Two separate pairs.
        let t = Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(50.0, 0.0),
                Point::new(500.0, 0.0),
                Point::new(550.0, 0.0),
            ],
            100.0,
        );
        let comps = t.connected_components();
        assert_eq!(
            comps,
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]]
        );
    }

    #[test]
    fn hop_distance_on_a_line() {
        let t = line(100.0, 5, 100.0);
        assert_eq!(t.hop_distance(NodeId(0), NodeId(0)), Some(0));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(t.hop_distance(NodeId(4), NodeId(0)), Some(4));
    }

    #[test]
    fn hop_distance_unreachable() {
        let t = Topology::from_positions(vec![Point::new(0.0, 0.0), Point::new(999.0, 0.0)], 100.0);
        assert_eq!(t.hop_distance(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn mean_degree_counts_both_endpoints() {
        let t = line(100.0, 2, 100.0);
        assert_eq!(t.mean_degree(), 1.0);
        assert_eq!(line(100.0, 1, 100.0).mean_degree(), 0.0);
    }

    #[test]
    fn empty_topology() {
        let t = Topology::from_positions(Vec::new(), 100.0);
        assert!(t.is_empty());
        assert!(t.connected_components().is_empty());
        assert_eq!(t.mean_degree(), 0.0);
    }

    #[test]
    #[should_panic(expected = "transmission range must be positive")]
    fn zero_range_rejected() {
        let _ = Topology::from_positions(vec![Point::ORIGIN], 0.0);
    }

    #[test]
    fn grid_construction_matches_naive() {
        use crate::geometry::Rect;
        use crate::placement::Placement;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts = Placement::UniformRect(Rect::new(-100.0, -100.0, 500.0, 700.0))
                .generate(200, &mut rng);
            let fast = Topology::from_positions(pts.clone(), 100.0);
            let slow = Topology::from_positions_naive(pts, 100.0);
            for n in fast.node_ids() {
                assert_eq!(
                    fast.neighbors(n),
                    slow.neighbors(n),
                    "seed {seed}, node {n}"
                );
            }
        }
    }

    #[test]
    fn grid_handles_exact_range_boundaries() {
        // Points exactly `range` apart, axis-aligned with cell edges.
        let t = Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(200.0, 0.0),
                Point::new(100.0, 100.0),
            ],
            100.0,
        );
        assert!(t.linked(NodeId(0), NodeId(1)));
        assert!(t.linked(NodeId(1), NodeId(2)));
        assert!(!t.linked(NodeId(0), NodeId(2)));
        assert!(t.linked(NodeId(1), NodeId(3)));
    }

    #[test]
    fn node_ids_enumerates_all() {
        let t = line(10.0, 4, 100.0);
        let ids: Vec<NodeId> = t.node_ids().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }
}
