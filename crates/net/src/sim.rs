//! The discrete-event wireless simulator.
//!
//! [`Simulator`] drives a population of [`Actor`]s over a static
//! [`Topology`] and a [`RadioConfig`]: every broadcast is offered to
//! each in-range neighbour, each copy is independently subjected to
//! the channel's loss model and delivered after a bounded delay.
//! Crashes follow the paper's **fail-stop** model — a crashed node
//! never transmits, receives, or fires timers again. Runs are fully
//! deterministic for a given seed.

use crate::actor::{Actor, Command, Ctx, TimerToken};
use crate::energy::{EnergyBook, EnergyModel};
use crate::event::{EventKind, EventQueue};
use crate::id::NodeId;
use crate::metrics::SimMetrics;
use crate::radio::RadioConfig;
use crate::rng::derive_seed;
use crate::time::SimTime;
use crate::topology::Topology;
use crate::trace::{Trace, TraceKind, TraceRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// A complete simulation of one wireless network.
///
/// # Examples
///
/// Two nodes in range; node 0 pings, node 1 hears it:
///
/// ```
/// use cbfd_net::prelude::*;
///
/// #[derive(Default)]
/// struct Pinger { heard: usize }
/// impl Actor for Pinger {
///     type Msg = u8;
///     fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
///         if ctx.me() == NodeId(0) {
///             ctx.broadcast(7);
///         }
///     }
///     fn on_message(&mut self, _ctx: &mut Ctx<'_, u8>, _from: NodeId, _msg: u8) {
///         self.heard += 1;
///     }
/// }
///
/// let topo = Topology::from_positions(
///     vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
///     100.0,
/// );
/// let mut sim = Simulator::new(topo, RadioConfig::lossless(), 1, |_| Pinger::default());
/// sim.run_until(SimTime::from_millis(5));
/// assert_eq!(sim.actor(NodeId(1)).heard, 1);
/// ```
pub struct Simulator<A: Actor> {
    topology: Topology,
    radio: RadioConfig,
    actors: Vec<A>,
    alive: Vec<bool>,
    queue: EventQueue<A::Msg>,
    now: SimTime,
    rng: StdRng,
    metrics: SimMetrics,
    energy: EnergyBook,
    trace: Trace,
    /// Per node: live timer ids keyed by token.
    live_timers: Vec<HashMap<u64, Vec<u64>>>,
    /// Timer ids whose firing must be suppressed.
    cancelled_timers: HashSet<u64>,
    next_timer_id: u64,
    started: bool,
    /// Last instant solar harvesting was credited.
    last_harvest: SimTime,
    /// Recycled neighbour-list buffer for [`Simulator::transmit`]
    /// (avoids an allocation per transmission on the hot path).
    scratch_neighbors: Vec<NodeId>,
    /// Recycled command buffer threaded through [`Ctx`] so actor
    /// callbacks append into the same allocation every event.
    scratch_commands: Vec<Command<A::Msg>>,
}

impl<A: Actor> Simulator<A> {
    /// Creates a simulator over `topology` with the given radio and
    /// master `seed`; `make_actor` builds the protocol actor for each
    /// node.
    pub fn new(
        topology: Topology,
        radio: RadioConfig,
        seed: u64,
        mut make_actor: impl FnMut(NodeId) -> A,
    ) -> Self {
        let n = topology.len();
        let actors = topology.node_ids().map(&mut make_actor).collect();
        Simulator {
            actors,
            alive: vec![true; n],
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(derive_seed(seed, 0)),
            metrics: SimMetrics::new(n),
            energy: EnergyBook::new(n, EnergyModel::default()),
            trace: Trace::disabled(),
            live_timers: vec![HashMap::new(); n],
            cancelled_timers: HashSet::new(),
            next_timer_id: 0,
            started: false,
            last_harvest: SimTime::ZERO,
            scratch_neighbors: Vec::new(),
            scratch_commands: Vec::new(),
            topology,
            radio,
        }
    }

    /// Replaces the energy model (all nodes reset to full charge).
    pub fn set_energy_model(&mut self, model: EnergyModel) {
        self.energy = EnergyBook::new(self.topology.len(), model);
    }

    /// Swaps the radio configuration mid-run (e.g. an interference
    /// storm raising the loss probability). Affects transmissions from
    /// the next event onward; copies already in flight keep their old
    /// delivery outcome.
    pub fn set_radio(&mut self, radio: RadioConfig) {
        self.radio = radio;
    }

    /// Enables event tracing.
    pub fn enable_trace(&mut self) {
        self.trace = Trace::enabled();
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The underlying topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Traffic counters accumulated so far.
    #[inline]
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The per-node energy ledger.
    #[inline]
    pub fn energy(&self) -> &EnergyBook {
        &self.energy
    }

    /// The event trace (empty unless [`Simulator::enable_trace`] was
    /// called).
    #[inline]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Shared access to the actor on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn actor(&self, node: NodeId) -> &A {
        &self.actors[node.index()]
    }

    /// Exclusive access to the actor on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn actor_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.actors[node.index()]
    }

    /// Iterates over `(id, actor)` pairs.
    pub fn actors(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.actors
            .iter()
            .enumerate()
            .map(|(i, a)| (NodeId(i as u32), a))
    }

    /// Whether `node` is still operational.
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Node IDs that are still operational.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.topology
            .node_ids()
            .filter(|n| self.alive[n.index()])
            .collect()
    }

    /// Schedules a fail-stop crash of `node` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_crash(&mut self, node: NodeId, at: SimTime) {
        assert!(at >= self.now, "cannot schedule a crash in the past");
        self.queue.schedule(at, EventKind::Crash { node });
    }

    /// Crashes `node` immediately.
    pub fn crash_now(&mut self, node: NodeId) {
        self.apply_crash(node);
    }

    /// Runs until the event queue is exhausted or `deadline` is
    /// reached; afterwards `now()` equals `deadline` (or the time of
    /// the last event if that is later — it never is).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs until no events remain, up to `max_events` (a safety stop
    /// for protocols that never quiesce). Returns the number of events
    /// processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.ensure_started();
        let mut processed = 0;
        while processed < max_events && !self.queue.is_empty() {
            self.step();
            processed += 1;
        }
        processed
    }

    /// Processes exactly one pending event (after delivering start
    /// callbacks on first use). Returns false if the queue was empty.
    pub fn step_one(&mut self) -> bool {
        self.ensure_started();
        if self.queue.is_empty() {
            return false;
        }
        self.step();
        true
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            let node = NodeId(i as u32);
            if !self.alive[i] {
                continue;
            }
            let mut ctx =
                Ctx::new(self.now, node, &mut self.rng).with_energy(self.energy.remaining(node));
            ctx.commands = std::mem::take(&mut self.scratch_commands);
            self.actors[i].on_start(&mut ctx);
            let commands = ctx.commands;
            self.apply_commands(node, commands);
        }
    }

    fn step(&mut self) {
        let Some((at, kind)) = self.queue.pop() else {
            return;
        };
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        // Solar harvesting (Section 2.1: hosts are "equipped with
        // solar cells for energy harvest"): credit elapsed time.
        if self.energy.model().harvest_per_sec > 0.0 && self.now > self.last_harvest {
            let elapsed = self.now.since(self.last_harvest).as_micros() as f64 / 1e6;
            self.energy.harvest(elapsed);
            self.last_harvest = self.now;
        }
        match kind {
            EventKind::Deliver { to, from, msg } => self.apply_delivery(to, from, msg),
            EventKind::Timer { node, token, id } => self.apply_timer(node, token, id),
            EventKind::Crash { node } => self.apply_crash(node),
        }
    }

    fn apply_delivery(&mut self, to: NodeId, from: NodeId, msg: A::Msg) {
        if !self.alive[to.index()] {
            self.metrics.record_dropped_dead();
            return;
        }
        self.metrics.record_delivery();
        self.energy.charge_rx(to);
        self.trace.push(TraceRecord {
            at: self.now,
            node: to,
            peer: from,
            kind: TraceKind::Receive,
        });
        let mut ctx = Ctx::new(self.now, to, &mut self.rng).with_energy(self.energy.remaining(to));
        ctx.commands = std::mem::take(&mut self.scratch_commands);
        self.actors[to.index()].on_message(&mut ctx, from, msg);
        let commands = ctx.commands;
        self.apply_commands(to, commands);
    }

    fn apply_timer(&mut self, node: NodeId, token: u64, id: u64) {
        if self.cancelled_timers.remove(&id) {
            return;
        }
        // Retire the id from the live map.
        if let Some(ids) = self.live_timers[node.index()].get_mut(&token) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.live_timers[node.index()].remove(&token);
            }
        }
        if !self.alive[node.index()] {
            return;
        }
        self.metrics.record_timer();
        self.trace.push(TraceRecord {
            at: self.now,
            node,
            peer: node,
            kind: TraceKind::Timer,
        });
        let mut ctx =
            Ctx::new(self.now, node, &mut self.rng).with_energy(self.energy.remaining(node));
        ctx.commands = std::mem::take(&mut self.scratch_commands);
        self.actors[node.index()].on_timer(&mut ctx, TimerToken(token));
        let commands = ctx.commands;
        self.apply_commands(node, commands);
    }

    fn apply_crash(&mut self, node: NodeId) {
        if !self.alive[node.index()] {
            return;
        }
        self.alive[node.index()] = false;
        self.trace.push(TraceRecord {
            at: self.now,
            node,
            peer: node,
            kind: TraceKind::Crash,
        });
    }

    fn apply_commands(&mut self, node: NodeId, mut commands: Vec<Command<A::Msg>>) {
        for command in commands.drain(..) {
            match command {
                Command::Broadcast(msg) => self.transmit(node, msg),
                Command::SetTimer { fire_at, token } => {
                    let id = self.next_timer_id;
                    self.next_timer_id += 1;
                    self.live_timers[node.index()]
                        .entry(token.0)
                        .or_default()
                        .push(id);
                    self.queue.schedule(
                        fire_at,
                        EventKind::Timer {
                            node,
                            token: token.0,
                            id,
                        },
                    );
                }
                Command::CancelTimer { token } => {
                    if let Some(ids) = self.live_timers[node.index()].remove(&token.0) {
                        self.cancelled_timers.extend(ids);
                    }
                }
            }
        }
        // Hand the (now empty) allocation back for the next event.
        self.scratch_commands = commands;
    }

    fn transmit(&mut self, from: NodeId, msg: A::Msg) {
        // The borrow checker won't let us iterate `topology.neighbors`
        // while mutating the queue/rng, so the list is copied — into a
        // recycled buffer rather than a fresh allocation per transmit.
        let mut neighbors = std::mem::take(&mut self.scratch_neighbors);
        neighbors.clear();
        neighbors.extend_from_slice(self.topology.neighbors(from));
        self.metrics.record_transmission(from, neighbors.len());
        self.energy.charge_tx(from);
        self.trace.push(TraceRecord {
            at: self.now,
            node: from,
            peer: from,
            kind: TraceKind::Transmit,
        });
        let from_pos = self.topology.position(from);
        let mut msg = Some(msg);
        let last = neighbors.len().wrapping_sub(1);
        for (i, &to) in neighbors.iter().enumerate() {
            let to_pos = self.topology.position(to);
            let lost = self
                .radio
                .loss_mut()
                .is_lost(from, to, from_pos, to_pos, &mut self.rng);
            if lost {
                self.metrics.record_loss();
                self.trace.push(TraceRecord {
                    at: self.now,
                    node: to,
                    peer: from,
                    kind: TraceKind::Loss,
                });
                continue;
            }
            let delay = self.radio.draw_delay(&mut self.rng);
            // The final copy moves the message instead of cloning it.
            let payload = if i == last {
                msg.take().expect("message still owned for final copy")
            } else {
                msg.as_ref()
                    .expect("message owned until final copy")
                    .clone()
            };
            self.queue.schedule(
                self.now + delay,
                EventKind::Deliver {
                    to,
                    from,
                    msg: payload,
                },
            );
        }
        self.scratch_neighbors = neighbors;
    }
}

impl<A: Actor> std::fmt::Debug for Simulator<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.topology.len())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("radio", &self.radio)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::time::SimDuration;

    /// Broadcasts `count` pings at start and records everything heard.
    #[derive(Default)]
    struct Chatter {
        heard: Vec<(NodeId, u32)>,
        pings: u32,
        timer_fires: Vec<TimerToken>,
    }

    impl Actor for Chatter {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            for i in 0..self.pings {
                ctx.broadcast(i);
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.heard.push((from, msg));
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, token: TimerToken) {
            self.timer_fires.push(token);
        }
    }

    fn pair_topology() -> Topology {
        Topology::from_positions(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)], 100.0)
    }

    fn triangle_topology() -> Topology {
        Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(50.0, 0.0),
                Point::new(25.0, 40.0),
            ],
            100.0,
        )
    }

    #[test]
    fn broadcast_reaches_all_neighbors() {
        let mut sim = Simulator::new(triangle_topology(), RadioConfig::lossless(), 1, |id| {
            Chatter {
                pings: if id == NodeId(0) { 1 } else { 0 },
                ..Chatter::default()
            }
        });
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.actor(NodeId(1)).heard, vec![(NodeId(0), 0)]);
        assert_eq!(sim.actor(NodeId(2)).heard, vec![(NodeId(0), 0)]);
        assert!(sim.actor(NodeId(0)).heard.is_empty(), "no self delivery");
        assert_eq!(sim.metrics().transmissions, 1);
        assert_eq!(sim.metrics().deliveries, 2);
    }

    #[test]
    fn total_loss_channel_delivers_nothing() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::bernoulli(1.0), 1, |_| {
            Chatter {
                pings: 3,
                ..Chatter::default()
            }
        });
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.metrics().deliveries, 0);
        assert_eq!(sim.metrics().losses, 6);
    }

    #[test]
    fn crashed_node_is_silent_and_deaf() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 0,
            ..Chatter::default()
        });
        sim.crash_now(NodeId(1));
        sim.actor_mut(NodeId(0)).pings = 1;
        // Restart semantics: node 0 broadcasts at start; node 1 is
        // already dead so the copy is dropped.
        sim.run_until(SimTime::from_millis(10));
        assert!(sim.actor(NodeId(1)).heard.is_empty());
        assert_eq!(sim.metrics().dropped_dead, 1);
        assert!(!sim.is_alive(NodeId(1)));
        assert_eq!(sim.alive_nodes(), vec![NodeId(0)]);
    }

    #[test]
    fn scheduled_crash_takes_effect_at_time() {
        struct TimedPing;
        impl Actor for TimedPing {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.me() == NodeId(0) {
                    // Fire one ping before the crash and one after.
                    ctx.set_timer(SimDuration::from_millis(1), TimerToken(1));
                    ctx.set_timer(SimDuration::from_millis(20), TimerToken(2));
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, _t: TimerToken) {
                ctx.broadcast(0);
            }
        }
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| TimedPing);
        sim.schedule_crash(NodeId(1), SimTime::from_millis(10));
        sim.run_until(SimTime::from_secs(1));
        // First ping delivered, second dropped on the dead node.
        assert_eq!(sim.metrics().deliveries, 1);
        assert_eq!(sim.metrics().dropped_dead, 1);
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        struct TimerTest;
        impl Actor for TimerTest {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(2), TimerToken(2));
                ctx.set_timer(SimDuration::from_millis(1), TimerToken(1));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: TimerToken) {
                assert_eq!(token.0, ctx.now().as_millis(), "token must match schedule");
            }
        }
        let topo = Topology::from_positions(vec![Point::ORIGIN], 100.0);
        let mut sim = Simulator::new(topo, RadioConfig::lossless(), 1, |_| TimerTest);
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.metrics().timers_fired, 2);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct CancelTest;
        impl Actor for CancelTest {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(5), TimerToken(1));
                ctx.set_timer(SimDuration::from_millis(1), TimerToken(2));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: TimerToken) {
                if token == TimerToken(2) {
                    ctx.cancel_timer(TimerToken(1));
                } else {
                    panic!("cancelled timer fired");
                }
            }
        }
        let topo = Topology::from_positions(vec![Point::ORIGIN], 100.0);
        let mut sim = Simulator::new(topo, RadioConfig::lossless(), 1, |_| CancelTest);
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(sim.metrics().timers_fired, 1);
    }

    #[test]
    fn cancel_does_not_eat_newer_timer_with_same_token() {
        // set A (late), cancel token, set B (early): only A must die.
        struct Regress {
            fired: u32,
        }
        impl Actor for Regress {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(10), TimerToken(7));
                ctx.cancel_timer(TimerToken(7));
                ctx.set_timer(SimDuration::from_millis(1), TimerToken(7));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, token: TimerToken) {
                assert_eq!(token, TimerToken(7));
                self.fired += 1;
            }
        }
        let topo = Topology::from_positions(vec![Point::ORIGIN], 100.0);
        let mut sim = Simulator::new(topo, RadioConfig::lossless(), 1, |_| Regress { fired: 0 });
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.actor(NodeId(0)).fired, 1);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(
                triangle_topology(),
                RadioConfig::bernoulli(0.5),
                seed,
                |_| Chatter {
                    pings: 10,
                    ..Chatter::default()
                },
            );
            sim.run_until(SimTime::from_millis(100));
            (sim.metrics().deliveries, sim.actor(NodeId(0)).heard.clone())
        };
        assert_eq!(run(7), run(7));
        // Different seeds should (with overwhelming probability)
        // produce different loss patterns over 60 offered copies.
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn energy_is_charged_for_traffic() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 5,
            ..Chatter::default()
        });
        sim.run_until(SimTime::from_millis(10));
        let model = *sim.energy().model();
        let expected = model.initial - 5.0 * model.tx_cost - 5.0 * model.rx_cost;
        assert!((sim.energy().remaining(NodeId(0)) - expected).abs() < 1e-9);
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 1,
            ..Chatter::default()
        });
        sim.enable_trace();
        sim.run_until(SimTime::from_millis(10));
        let kinds: Vec<TraceKind> = sim.trace().records().iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&TraceKind::Transmit));
        assert!(kinds.contains(&TraceKind::Receive));
    }

    #[test]
    fn run_to_quiescence_counts_events() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 2,
            ..Chatter::default()
        });
        // 2 pings per node = 4 deliveries total (one per neighbour copy).
        let processed = sim.run_to_quiescence(1_000);
        assert_eq!(processed, 4);
        assert!(!sim.step_one());
    }

    #[test]
    fn solar_harvest_replenishes_energy() {
        use crate::energy::EnergyModel;
        // One ping per 100 ms; harvesting outpaces the transmit cost.
        struct Beacon;
        impl Actor for Beacon {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(100), TimerToken(0));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: TimerToken) {
                ctx.broadcast(());
                ctx.set_timer(SimDuration::from_millis(100), TimerToken(0));
            }
        }
        let run = |harvest: f64| {
            let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Beacon);
            sim.set_energy_model(EnergyModel {
                initial: 100.0,
                tx_cost: 1.0,
                rx_cost: 0.1,
                harvest_per_sec: harvest,
            });
            sim.run_until(SimTime::from_secs(5));
            sim.energy().remaining(NodeId(0))
        };
        let drained = run(0.0);
        let harvested = run(20.0); // 2 units per 100 ms vs 1.1 spent
        assert!(
            drained < 50.0,
            "beaconing must drain without harvest: {drained}"
        );
        assert!(
            (harvested - 100.0).abs() < 2.0,
            "harvesting should keep the battery topped up: {harvested}"
        );
    }

    #[test]
    fn radio_can_change_mid_run() {
        // Clean until t=10ms, then total loss: later pings vanish.
        struct Ping;
        impl Actor for Ping {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == NodeId(0) {
                    ctx.set_timer(SimDuration::from_millis(5), TimerToken(0));
                    ctx.set_timer(SimDuration::from_millis(15), TimerToken(1));
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: TimerToken) {
                ctx.broadcast(());
            }
        }
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Ping);
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.metrics().deliveries, 1);
        sim.set_radio(RadioConfig::bernoulli(1.0));
        sim.run_until(SimTime::from_millis(30));
        assert_eq!(
            sim.metrics().deliveries,
            1,
            "storm must drop the second ping"
        );
        assert_eq!(sim.metrics().losses, 1);
    }

    #[test]
    fn debug_output_is_informative() {
        let sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 0,
            ..Chatter::default()
        });
        let s = format!("{sim:?}");
        assert!(s.contains("Simulator"));
        assert!(s.contains("nodes"));
    }
}
