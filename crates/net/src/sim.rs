//! The discrete-event wireless simulator.
//!
//! [`Simulator`] drives a population of [`Actor`]s over a static
//! [`Topology`] and a [`RadioConfig`]: every broadcast is offered to
//! each in-range neighbour, each copy is independently subjected to
//! the channel's loss model and delivered after a bounded delay.
//! Crashes follow the paper's **fail-stop** model — a crashed node
//! never transmits, receives, or fires timers again. Runs are fully
//! deterministic for a given seed.

use crate::actor::{Actor, Command, Ctx, TimerToken};
use crate::checkpoint::{self, CheckpointError, Persist, Reader, Writer};
use crate::energy::{EnergyBook, EnergyModel};
use crate::event::{EventKind, EventQueue};
use crate::id::NodeId;
use crate::loss::LossSnapshot;
use crate::metrics::SimMetrics;
use crate::radio::RadioConfig;
use crate::rng::derive_seed;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::{Trace, TraceKind, TraceRecord};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A summary of one *effective* simulation event, handed to the
/// observer of [`Simulator::run_until_observed`] after the event has
/// been applied.
///
/// "Effective" means the event actually changed the simulation:
/// deliveries to crashed nodes, stale (cancelled) timer firings, and
/// crashes of already-dead nodes are dispatched silently and never
/// reach the observer. This makes observer-level invariants sharp: an
/// observed `Deliver`/`Timer` for a node that previously appeared in a
/// `Crash` record is an engine bug, not an expected no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A message from `from` was delivered to the live node `to` (its
    /// `on_message` ran).
    Deliver {
        /// Receiving node.
        to: NodeId,
        /// Transmitting node.
        from: NodeId,
    },
    /// A pending timer fired on the live node `node` (its `on_timer`
    /// ran).
    Timer {
        /// Owning node.
        node: NodeId,
        /// The actor-chosen token.
        token: TimerToken,
    },
    /// `node` transitioned from operational to crashed (fail-stop).
    Crash {
        /// Crashing node.
        node: NodeId,
    },
    /// A dormant node became operational for the first time (late
    /// arrival; its `on_start` ran).
    Join {
        /// Joining node.
        node: NodeId,
    },
    /// `node` withdrew gracefully: its `on_leave` ran (a last chance
    /// to announce the departure) and it then went silent.
    Leave {
        /// Departing node.
        node: NodeId,
    },
    /// A crashed or departed node came back: its `on_rejoin` ran after
    /// every stale pre-downtime timer was invalidated.
    Rejoin {
        /// Returning node.
        node: NodeId,
    },
}

/// Handle to a broadcast payload stored once in the [`PayloadArena`];
/// `Deliver` events carry this instead of a cloned `A::Msg`, so a
/// transmission fans out to any number of neighbours without deep
/// copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PayloadId(pub(crate) u32);

impl Persist for PayloadId {
    fn persist(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(PayloadId(r.get_u32()?))
    }
}

/// Ref-counted slab holding each broadcast payload exactly once.
///
/// Lifetime rule: `transmit` inserts the payload and sets the
/// reference count to the number of `Deliver` events scheduled; every
/// delivery (including copies addressed to crashed nodes) releases one
/// reference, and the slot is recycled when the count reaches zero.
/// A transmission whose every copy is lost frees the slot immediately.
#[derive(Debug)]
pub(crate) struct PayloadArena<M> {
    slots: Vec<(u32, Option<M>)>,
    free: Vec<u32>,
}

impl<M> PayloadArena<M> {
    pub(crate) fn new() -> Self {
        PayloadArena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores `msg` with a reference count of zero (set after fan-out).
    pub(crate) fn insert(&mut self, msg: M) -> PayloadId {
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = (0, Some(msg));
            PayloadId(idx)
        } else {
            self.slots.push((0, Some(msg)));
            PayloadId((self.slots.len() - 1) as u32)
        }
    }

    /// Stores `msg` with its final reference count in one operation —
    /// the fused `insert` + `set_refs` pair the tiled exchange pays
    /// per routed payload. `refs == 0` behaves exactly like
    /// `insert` followed by `set_refs(_, 0)`: the slot is claimed and
    /// immediately recycled, preserving free-list order (the free list
    /// is persisted, so its order is observable).
    pub(crate) fn insert_with_refs(&mut self, msg: M, refs: u32) -> PayloadId {
        if refs == 0 {
            let id = self.insert(msg);
            self.slots[id.0 as usize].1 = None;
            self.free.push(id.0);
            return id;
        }
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = (refs, Some(msg));
            PayloadId(idx)
        } else {
            self.slots.push((refs, Some(msg)));
            PayloadId((self.slots.len() - 1) as u32)
        }
    }

    pub(crate) fn set_refs(&mut self, id: PayloadId, refs: u32) {
        if refs == 0 {
            self.slots[id.0 as usize].1 = None;
            self.free.push(id.0);
        } else {
            self.slots[id.0 as usize].0 = refs;
        }
    }

    pub(crate) fn get(&self, id: PayloadId) -> &M {
        self.slots[id.0 as usize]
            .1
            .as_ref()
            .expect("payload alive while references remain")
    }

    /// Drops one reference; recycles the slot on the last one.
    pub(crate) fn release(&mut self, id: PayloadId) {
        let slot = &mut self.slots[id.0 as usize];
        slot.0 -= 1;
        if slot.0 == 0 {
            slot.1 = None;
            self.free.push(id.0);
        }
    }
}

impl<M: Persist> Persist for PayloadArena<M> {
    // The slot vector and free list are stored exactly — not rebuilt —
    // because future slot assignments (and thus the payload IDs inside
    // queued `Deliver` events) depend on the free list's order.
    fn persist(&self, w: &mut Writer) {
        self.slots.persist(w);
        self.free.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(PayloadArena {
            slots: Vec::restore(r)?,
            free: Vec::restore(r)?,
        })
    }
}

/// Generation-stamped timer slab: each pending timer owns a slot, the
/// queued event carries `(slot, generation)` packed into the event's
/// `id`, cancellation bumps the generation in O(1), and a stale firing
/// is rejected by a single compare — no tombstone set to grow without
/// bound on cancel-heavy runs.
#[derive(Debug, Default)]
pub(crate) struct TimerSlab {
    generations: Vec<u32>,
    free: Vec<u32>,
}

impl TimerSlab {
    /// Claims a slot, returning the packed `(slot, generation)` stamp.
    pub(crate) fn alloc(&mut self) -> u64 {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.generations.push(0);
            (self.generations.len() - 1) as u32
        });
        pack_timer(slot, self.generations[slot as usize])
    }

    /// Invalidates `slot` (cancellation) and recycles it. The stale
    /// event still in the queue is rejected by its generation on pop;
    /// generations wrap at 2^32 reuses of one slot, far beyond any
    /// run's cancel count.
    pub(crate) fn invalidate(&mut self, slot: u32) {
        self.generations[slot as usize] = self.generations[slot as usize].wrapping_add(1);
        self.free.push(slot);
    }

    /// Consumes a firing: true iff `stamp` is current for its slot, in
    /// which case the slot is invalidated (the event is spent) and
    /// recycled.
    pub(crate) fn try_fire(&mut self, stamp: u64) -> bool {
        let (slot, generation) = unpack_timer(stamp);
        if self.generations[slot as usize] != generation {
            return false;
        }
        self.invalidate(slot);
        true
    }
}

crate::impl_persist!(TimerSlab { generations, free });

pub(crate) fn pack_timer(slot: u32, generation: u32) -> u64 {
    (u64::from(slot) << 32) | u64::from(generation)
}

pub(crate) fn unpack_timer(stamp: u64) -> (u32, u32) {
    ((stamp >> 32) as u32, stamp as u32)
}

/// A complete simulation of one wireless network.
///
/// # Examples
///
/// Two nodes in range; node 0 pings, node 1 hears it:
///
/// ```
/// use cbfd_net::prelude::*;
///
/// #[derive(Default)]
/// struct Pinger { heard: usize }
/// impl Actor for Pinger {
///     type Msg = u8;
///     fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
///         if ctx.me() == NodeId(0) {
///             ctx.broadcast(7);
///         }
///     }
///     fn on_message(&mut self, _ctx: &mut Ctx<'_, u8>, _from: NodeId, _msg: &u8) {
///         self.heard += 1;
///     }
/// }
///
/// let topo = Topology::from_positions(
///     vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
///     100.0,
/// );
/// let mut sim = Simulator::new(topo, RadioConfig::lossless(), 1, |_| Pinger::default());
/// sim.run_until(SimTime::from_millis(5));
/// assert_eq!(sim.actor(NodeId(1)).heard, 1);
/// ```
pub struct Simulator<A: Actor> {
    topology: Topology,
    radio: RadioConfig,
    actors: Vec<A>,
    alive: Vec<bool>,
    /// Nodes that withdrew gracefully (distinct from crashes so that
    /// observers — the chaos monitor in particular — can tell a
    /// voluntary leaver from a failure).
    departed: Vec<bool>,
    /// Nodes configured as late arrivals: not yet part of the run,
    /// activated by a `Join` event (never started, never crashed).
    dormant: Vec<bool>,
    queue: EventQueue<PayloadId>,
    /// Broadcast payloads, stored once per transmission.
    payloads: PayloadArena<A::Msg>,
    now: SimTime,
    rng: StdRng,
    metrics: SimMetrics,
    energy: EnergyBook,
    trace: Trace,
    /// Generation stamps validating timer firings.
    timers: TimerSlab,
    /// Per node: `(token, slot)` of every pending timer, so that
    /// cancel-by-token finds its slots (lists stay tiny — a handful of
    /// pending timers per node).
    node_timers: Vec<Vec<(u64, u32)>>,
    started: bool,
    /// Last instant solar harvesting was credited.
    last_harvest: SimTime,
    /// Optional network partition: group id per node. Copies between
    /// different groups are dropped at transmit time.
    partition: Option<Vec<u32>>,
    /// Extra per-directed-link delivery delay (chaos interposer),
    /// sorted by `(from, to)`. A sorted vec instead of a tree map so
    /// [`Simulator::transmit`] can prefetch the source's contiguous
    /// run once per transmission and probe only that (usually empty)
    /// slice per surviving copy.
    link_lag: Vec<(NodeId, NodeId, SimDuration)>,
    /// Probability that a surviving copy is duplicated (chaos
    /// interposer); `0.0` keeps the transmit path draw-for-draw
    /// identical to a simulator without the feature.
    dup_probability: f64,
    /// Extra delay of the duplicated (stale) copy.
    dup_lag: SimDuration,
    /// Recycled neighbour-list buffer for [`Simulator::transmit`]
    /// (avoids an allocation per transmission on the hot path).
    scratch_neighbors: Vec<NodeId>,
    /// Recycled command buffer threaded through [`Ctx`] so actor
    /// callbacks append into the same allocation every event.
    scratch_commands: Vec<Command<A::Msg>>,
}

impl<A: Actor> Simulator<A> {
    /// Creates a simulator over `topology` with the given radio and
    /// master `seed`; `make_actor` builds the protocol actor for each
    /// node.
    pub fn new(
        topology: Topology,
        radio: RadioConfig,
        seed: u64,
        mut make_actor: impl FnMut(NodeId) -> A,
    ) -> Self {
        let n = topology.len();
        let actors = topology.node_ids().map(&mut make_actor).collect();
        Simulator {
            actors,
            alive: vec![true; n],
            departed: vec![false; n],
            dormant: vec![false; n],
            queue: EventQueue::new(),
            payloads: PayloadArena::new(),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(derive_seed(seed, 0)),
            metrics: SimMetrics::new(n),
            energy: EnergyBook::new(n, EnergyModel::default()),
            trace: Trace::disabled(),
            timers: TimerSlab::default(),
            node_timers: vec![Vec::new(); n],
            started: false,
            last_harvest: SimTime::ZERO,
            partition: None,
            link_lag: Vec::new(),
            dup_probability: 0.0,
            dup_lag: SimDuration::ZERO,
            scratch_neighbors: Vec::new(),
            scratch_commands: Vec::new(),
            topology,
            radio,
        }
    }

    /// Replaces the energy model (all nodes reset to full charge).
    pub fn set_energy_model(&mut self, model: EnergyModel) {
        self.energy = EnergyBook::new(self.topology.len(), model);
    }

    /// Swaps the radio configuration mid-run (e.g. an interference
    /// storm raising the loss probability). Affects transmissions from
    /// the next event onward; copies already in flight keep their old
    /// delivery outcome.
    pub fn set_radio(&mut self, radio: RadioConfig) {
        self.radio = radio;
    }

    /// Enables event tracing.
    pub fn enable_trace(&mut self) {
        self.trace = Trace::enabled();
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The underlying topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Traffic counters accumulated so far.
    #[inline]
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The per-node energy ledger.
    #[inline]
    pub fn energy(&self) -> &EnergyBook {
        &self.energy
    }

    /// The event trace (empty unless [`Simulator::enable_trace`] was
    /// called).
    #[inline]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Shared access to the actor on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn actor(&self, node: NodeId) -> &A {
        &self.actors[node.index()]
    }

    /// Exclusive access to the actor on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn actor_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.actors[node.index()]
    }

    /// Iterates over `(id, actor)` pairs.
    pub fn actors(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.actors
            .iter()
            .enumerate()
            .map(|(i, a)| (NodeId(i as u32), a))
    }

    /// Whether `node` is still operational.
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Iterates over the node IDs that are still operational, without
    /// allocating.
    pub fn alive_nodes_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topology.node_ids().filter(|n| self.alive[n.index()])
    }

    /// Node IDs that are still operational, collected into a fresh
    /// `Vec`; prefer [`Simulator::alive_nodes_iter`] on hot paths.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.alive_nodes_iter().collect()
    }

    /// Schedules a fail-stop crash of `node` at time `at`.
    ///
    /// A timestamp in the simulated past **saturates to `now()`**
    /// instead of panicking, so machine-generated fault schedules (the
    /// chaos fuzzer's randomized plans) can never abort the process;
    /// the effective crash instant is returned.
    pub fn schedule_crash(&mut self, node: NodeId, at: SimTime) -> SimTime {
        let at = at.max(self.now);
        if node.index() < self.topology.len() {
            self.queue.schedule(at, EventKind::Crash { node });
        }
        at
    }

    /// Crashes `node` immediately.
    pub fn crash_now(&mut self, node: NodeId) {
        self.apply_crash(node);
    }

    // --------------------------------------------- lifecycle (churn)

    /// Marks `node` as a late arrival: it takes no part in the run (no
    /// `on_start`, no deliveries, no timers) until a scheduled `Join`
    /// activates it. Must be called before the first event is
    /// processed; afterwards — and for unknown nodes, or nodes that
    /// already crashed — it is a no-op, never a panic, so
    /// machine-generated churn plans cannot abort the process.
    pub fn set_dormant(&mut self, node: NodeId) {
        if self.started || node.index() >= self.topology.len() || !self.alive[node.index()] {
            return;
        }
        self.alive[node.index()] = false;
        self.dormant[node.index()] = true;
    }

    /// Schedules the activation of the dormant node `node` at `at`
    /// (its `on_start` runs then). Past timestamps saturate to `now()`
    /// and unknown nodes are ignored — same non-panicking contract as
    /// [`Simulator::schedule_crash`]; joins of nodes that are not
    /// dormant (already present, crashed, or departed) dissolve into
    /// silent no-ops at dispatch time. Returns the effective instant.
    pub fn schedule_join(&mut self, node: NodeId, at: SimTime) -> SimTime {
        let at = at.max(self.now);
        if node.index() < self.topology.len() {
            self.queue.schedule(at, EventKind::Join { node });
        }
        at
    }

    /// Schedules a graceful withdrawal of `node` at `at`: its
    /// `on_leave` callback runs (commands issued there — typically a
    /// departure announcement — are applied while the node is still
    /// operational), then the node goes silent and every pending timer
    /// it owns is invalidated. Leaves of unknown, dead, or dormant
    /// nodes are no-ops; past timestamps saturate to `now()`. Returns
    /// the effective instant.
    pub fn schedule_leave(&mut self, node: NodeId, at: SimTime) -> SimTime {
        let at = at.max(self.now);
        if node.index() < self.topology.len() {
            self.queue.schedule(at, EventKind::Leave { node });
        }
        at
    }

    /// Schedules the return of a crashed or departed node at `at`: all
    /// of its stale pre-downtime timers are invalidated, then its
    /// `on_rejoin` callback runs. The actor keeps whatever state it
    /// held when it went down — deciding what is stale is the
    /// protocol's job, which is exactly the scenario the FDS's
    /// incarnation numbers exist for. Rejoins of unknown, operational,
    /// or dormant nodes are no-ops; past timestamps saturate to
    /// `now()`. Returns the effective instant.
    pub fn schedule_rejoin(&mut self, node: NodeId, at: SimTime) -> SimTime {
        let at = at.max(self.now);
        if node.index() < self.topology.len() {
            self.queue.schedule(at, EventKind::Rejoin { node });
        }
        at
    }

    /// Whether `node` withdrew gracefully (as opposed to crashing).
    #[inline]
    pub fn has_departed(&self, node: NodeId) -> bool {
        self.departed[node.index()]
    }

    /// Whether `node` is a late arrival that has not joined yet.
    #[inline]
    pub fn is_dormant(&self, node: NodeId) -> bool {
        self.dormant[node.index()]
    }

    /// Nodes that withdrew gracefully and have not rejoined.
    pub fn departed_nodes(&self) -> Vec<NodeId> {
        self.topology
            .node_ids()
            .filter(|n| self.departed[n.index()])
            .collect()
    }

    /// Nodes that are down involuntarily: not alive, not a voluntary
    /// leaver, not an unactivated late arrival.
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        self.topology
            .node_ids()
            .filter(|n| {
                !self.alive[n.index()] && !self.departed[n.index()] && !self.dormant[n.index()]
            })
            .collect()
    }

    // ------------------------------------------- chaos interposer API

    /// Imposes a network partition: `group_of[i]` is the partition
    /// group of node `i`, and every copy offered across group
    /// boundaries is dropped (counted and traced as a channel loss).
    /// Takes effect from the next transmission; copies already in
    /// flight are delivered.
    ///
    /// # Panics
    ///
    /// Panics unless `group_of` has one entry per node.
    pub fn set_partition(&mut self, group_of: Vec<u32>) {
        assert_eq!(
            group_of.len(),
            self.topology.len(),
            "partition must assign a group to every node"
        );
        self.partition = Some(group_of);
    }

    /// Heals any partition imposed by [`Simulator::set_partition`].
    pub fn clear_partition(&mut self) {
        self.partition = None;
    }

    /// Adds `extra` delivery delay to every copy travelling over the
    /// directed link `from → to` (per-link lag injection). Replaces
    /// any previous lag on that link.
    pub fn set_link_lag(&mut self, from: NodeId, to: NodeId, extra: SimDuration) {
        match self
            .link_lag
            .binary_search_by_key(&(from, to), |&(f, t, _)| (f, t))
        {
            Ok(i) => self.link_lag[i].2 = extra,
            Err(i) => self.link_lag.insert(i, (from, to, extra)),
        }
    }

    /// Removes the lag on the directed link `from → to`, if any.
    pub fn remove_link_lag(&mut self, from: NodeId, to: NodeId) {
        if let Ok(i) = self
            .link_lag
            .binary_search_by_key(&(from, to), |&(f, t, _)| (f, t))
        {
            self.link_lag.remove(i);
        }
    }

    /// Removes all per-link lags.
    pub fn clear_link_lags(&mut self) {
        self.link_lag.clear();
    }

    /// Duplicates each surviving copy with probability `probability`,
    /// delivering the duplicate `lag` later than the original — a
    /// stale-replay fault the paper's channel model excludes. A
    /// probability of `0.0` disables the feature and leaves the
    /// transmit path's random stream untouched.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= probability <= 1.0`.
    pub fn set_duplication(&mut self, probability: f64, lag: SimDuration) {
        assert!(
            (0.0..=1.0).contains(&probability),
            "duplication probability must be in [0, 1]"
        );
        self.dup_probability = probability;
        self.dup_lag = lag;
    }

    /// Runs until the event queue is exhausted or until the next
    /// pending event lies beyond `deadline` (events at exactly
    /// `deadline` are still processed). Afterwards `now()` equals
    /// `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        // One queue scan per event: the deadline-aware pop replaces
        // the peek-then-pop pattern on this hot loop.
        while let Some((at, kind)) = self.queue.pop_at_or_before(deadline) {
            self.dispatch(at, kind);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Like [`Simulator::run_until`], invoking `observe` with a shared
    /// borrow of the simulator after every *effective* event (see
    /// [`SimEvent`] for what is filtered out). This is the hook the
    /// chaos subsystem's online invariant monitor attaches to; the
    /// observer cannot mutate the simulation, so a run's event stream
    /// is byte-identical with and without observation.
    pub fn run_until_observed(
        &mut self,
        deadline: SimTime,
        observe: &mut dyn FnMut(&Self, SimEvent),
    ) {
        self.ensure_started();
        while let Some((at, kind)) = self.queue.pop_at_or_before(deadline) {
            if let Some(event) = self.dispatch(at, kind) {
                observe(self, event);
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs until no events remain, up to `max_events` (a safety stop
    /// for protocols that never quiesce). Returns the number of events
    /// processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.ensure_started();
        let mut processed = 0;
        while processed < max_events && !self.queue.is_empty() {
            self.step();
            processed += 1;
        }
        processed
    }

    /// Processes exactly one pending event (after delivering start
    /// callbacks on first use). Returns false if the queue was empty.
    pub fn step_one(&mut self) -> bool {
        self.ensure_started();
        if self.queue.is_empty() {
            return false;
        }
        self.step();
        true
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            let node = NodeId(i as u32);
            if !self.alive[i] {
                continue;
            }
            let mut ctx =
                Ctx::new(self.now, node, &mut self.rng).with_energy(self.energy.remaining(node));
            ctx.commands = std::mem::take(&mut self.scratch_commands);
            self.actors[i].on_start(&mut ctx);
            let commands = ctx.commands;
            self.apply_commands(node, commands);
        }
    }

    fn step(&mut self) {
        let Some((at, kind)) = self.queue.pop() else {
            return;
        };
        self.dispatch(at, kind);
    }

    fn dispatch(&mut self, at: SimTime, kind: EventKind<PayloadId>) -> Option<SimEvent> {
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        // Solar harvesting (Section 2.1: hosts are "equipped with
        // solar cells for energy harvest"): credit elapsed time.
        if self.energy.model().harvest_per_sec > 0.0 && self.now > self.last_harvest {
            let elapsed = self.now.since(self.last_harvest).as_micros() as f64 / 1e6;
            self.energy.harvest(elapsed);
            self.last_harvest = self.now;
        }
        match kind {
            EventKind::Deliver { to, from, msg } => self
                .apply_delivery(to, from, msg)
                .then_some(SimEvent::Deliver { to, from }),
            EventKind::Timer { node, token, id } => {
                self.apply_timer(node, token, id)
                    .then_some(SimEvent::Timer {
                        node,
                        token: TimerToken(token),
                    })
            }
            EventKind::Crash { node } => self.apply_crash(node).then_some(SimEvent::Crash { node }),
            EventKind::Join { node } => self.apply_join(node).then_some(SimEvent::Join { node }),
            EventKind::Leave { node } => self.apply_leave(node).then_some(SimEvent::Leave { node }),
            EventKind::Rejoin { node } => {
                self.apply_rejoin(node).then_some(SimEvent::Rejoin { node })
            }
        }
    }

    /// Returns true iff the copy reached a live actor.
    fn apply_delivery(&mut self, to: NodeId, from: NodeId, payload: PayloadId) -> bool {
        if !self.alive[to.index()] {
            self.metrics.record_dropped_dead();
            self.payloads.release(payload);
            return false;
        }
        self.metrics.record_delivery();
        self.energy.charge_rx(to);
        if self.trace.is_enabled() {
            self.trace.push(TraceRecord {
                at: self.now,
                node: to,
                peer: from,
                kind: TraceKind::Receive,
            });
        }
        let mut ctx = Ctx::new(self.now, to, &mut self.rng).with_energy(self.energy.remaining(to));
        ctx.commands = std::mem::take(&mut self.scratch_commands);
        self.actors[to.index()].on_message(&mut ctx, from, self.payloads.get(payload));
        let commands = ctx.commands;
        self.payloads.release(payload);
        self.apply_commands(to, commands);
        true
    }

    /// Returns true iff a current-generation timer fired on a live
    /// node.
    fn apply_timer(&mut self, node: NodeId, token: u64, stamp: u64) -> bool {
        if !self.timers.try_fire(stamp) {
            return false; // cancelled: a newer generation owns the slot
        }
        // Retire the pending entry (the event is spent either way).
        let (slot, _) = unpack_timer(stamp);
        let pending = &mut self.node_timers[node.index()];
        if let Some(at) = pending.iter().position(|&(_, s)| s == slot) {
            pending.swap_remove(at);
        }
        if !self.alive[node.index()] {
            return false;
        }
        self.metrics.record_timer();
        if self.trace.is_enabled() {
            self.trace.push(TraceRecord {
                at: self.now,
                node,
                peer: node,
                kind: TraceKind::Timer,
            });
        }
        let mut ctx =
            Ctx::new(self.now, node, &mut self.rng).with_energy(self.energy.remaining(node));
        ctx.commands = std::mem::take(&mut self.scratch_commands);
        self.actors[node.index()].on_timer(&mut ctx, TimerToken(token));
        let commands = ctx.commands;
        self.apply_commands(node, commands);
        true
    }

    /// Returns true iff `node` transitioned from operational to dead.
    fn apply_crash(&mut self, node: NodeId) -> bool {
        if !self.alive[node.index()] {
            return false;
        }
        self.alive[node.index()] = false;
        if self.trace.is_enabled() {
            self.trace.push(TraceRecord {
                at: self.now,
                node,
                peer: node,
                kind: TraceKind::Crash,
            });
        }
        true
    }

    /// Returns true iff the dormant node `node` was activated.
    fn apply_join(&mut self, node: NodeId) -> bool {
        if !self.dormant[node.index()] {
            return false;
        }
        self.dormant[node.index()] = false;
        self.alive[node.index()] = true;
        if self.trace.is_enabled() {
            self.trace.push(TraceRecord {
                at: self.now,
                node,
                peer: node,
                kind: TraceKind::Join,
            });
        }
        let mut ctx =
            Ctx::new(self.now, node, &mut self.rng).with_energy(self.energy.remaining(node));
        ctx.commands = std::mem::take(&mut self.scratch_commands);
        self.actors[node.index()].on_start(&mut ctx);
        let commands = ctx.commands;
        self.apply_commands(node, commands);
        true
    }

    /// Returns true iff `node` withdrew (it was operational).
    fn apply_leave(&mut self, node: NodeId) -> bool {
        if !self.alive[node.index()] {
            return false;
        }
        // The departure announcement (whatever `on_leave` broadcasts)
        // is transmitted while the node is still operational.
        let mut ctx =
            Ctx::new(self.now, node, &mut self.rng).with_energy(self.energy.remaining(node));
        ctx.commands = std::mem::take(&mut self.scratch_commands);
        self.actors[node.index()].on_leave(&mut ctx);
        let commands = ctx.commands;
        self.apply_commands(node, commands);
        self.alive[node.index()] = false;
        self.departed[node.index()] = true;
        self.invalidate_node_timers(node);
        if self.trace.is_enabled() {
            self.trace.push(TraceRecord {
                at: self.now,
                node,
                peer: node,
                kind: TraceKind::Leave,
            });
        }
        true
    }

    /// Returns true iff the crashed or departed node `node` came back.
    fn apply_rejoin(&mut self, node: NodeId) -> bool {
        if self.alive[node.index()] || self.dormant[node.index()] {
            return false;
        }
        // Crashes leave timers pending (the dead node simply never
        // fires them); a returning node must not inherit them.
        self.invalidate_node_timers(node);
        self.alive[node.index()] = true;
        self.departed[node.index()] = false;
        if self.trace.is_enabled() {
            self.trace.push(TraceRecord {
                at: self.now,
                node,
                peer: node,
                kind: TraceKind::Rejoin,
            });
        }
        let mut ctx =
            Ctx::new(self.now, node, &mut self.rng).with_energy(self.energy.remaining(node));
        ctx.commands = std::mem::take(&mut self.scratch_commands);
        self.actors[node.index()].on_rejoin(&mut ctx);
        let commands = ctx.commands;
        self.apply_commands(node, commands);
        true
    }

    /// Invalidates and forgets every pending timer of `node`. The
    /// queued events stay in the calendar queue but their generation
    /// stamps are stale, so they dissolve on pop.
    fn invalidate_node_timers(&mut self, node: NodeId) {
        for &(_, slot) in &self.node_timers[node.index()] {
            self.timers.invalidate(slot);
        }
        self.node_timers[node.index()].clear();
    }

    fn apply_commands(&mut self, node: NodeId, mut commands: Vec<Command<A::Msg>>) {
        for command in commands.drain(..) {
            match command {
                Command::Broadcast(msg) => self.transmit(node, msg),
                Command::SetTimer { fire_at, token } => {
                    let stamp = self.timers.alloc();
                    let (slot, _) = unpack_timer(stamp);
                    self.node_timers[node.index()].push((token.0, slot));
                    self.queue.schedule(
                        fire_at,
                        EventKind::Timer {
                            node,
                            token: token.0,
                            id: stamp,
                        },
                    );
                }
                Command::CancelTimer { token } => {
                    let timers = &mut self.timers;
                    self.node_timers[node.index()].retain(|&(t, slot)| {
                        if t == token.0 {
                            timers.invalidate(slot);
                            false
                        } else {
                            true
                        }
                    });
                }
            }
        }
        // Hand the (now empty) allocation back for the next event.
        self.scratch_commands = commands;
    }

    fn transmit(&mut self, from: NodeId, msg: A::Msg) {
        // The borrow checker won't let us iterate `topology.neighbors`
        // while mutating the queue/rng, so the list is copied — into a
        // recycled buffer rather than a fresh allocation per transmit.
        let mut neighbors = std::mem::take(&mut self.scratch_neighbors);
        neighbors.clear();
        neighbors.extend_from_slice(self.topology.neighbors(from));
        self.metrics.record_transmission(from, neighbors.len());
        self.energy.charge_tx(from);
        if self.trace.is_enabled() {
            self.trace.push(TraceRecord {
                at: self.now,
                node: from,
                peer: from,
                kind: TraceKind::Transmit,
            });
        }
        let from_pos = self.topology.position(from);
        // Lag entries for this source, found once per transmission;
        // the per-copy probe below then touches only this slice, which
        // is empty for every source without an injected lag.
        let src_lags: &[(NodeId, NodeId, SimDuration)] = if self.link_lag.is_empty() {
            &[]
        } else {
            let lo = self.link_lag.partition_point(|&(f, _, _)| f < from);
            let hi = lo + self.link_lag[lo..].partition_point(|&(f, _, _)| f == from);
            &self.link_lag[lo..hi]
        };
        // The payload is stored once; every scheduled copy carries a
        // handle, so fan-out degree never clones the message.
        let payload = self.payloads.insert(msg);
        let mut refs = 0u32;
        for &to in neighbors.iter() {
            // Partition drops are deterministic and consume no random
            // draws, so healing a partition restores the exact
            // unpartitioned random stream.
            let partitioned = self
                .partition
                .as_ref()
                .is_some_and(|g| g[from.index()] != g[to.index()]);
            let to_pos = self.topology.position(to);
            let lost = partitioned
                || self
                    .radio
                    .loss_mut()
                    .is_lost(from, to, from_pos, to_pos, &mut self.rng);
            if lost {
                self.metrics.record_loss();
                if self.trace.is_enabled() {
                    self.trace.push(TraceRecord {
                        at: self.now,
                        node: to,
                        peer: from,
                        kind: TraceKind::Loss,
                    });
                }
                continue;
            }
            let mut delay = self.radio.draw_delay(&mut self.rng);
            if !src_lags.is_empty() {
                if let Ok(i) = src_lags.binary_search_by_key(&to, |&(_, t, _)| t) {
                    delay = delay + src_lags[i].2;
                }
            }
            refs += 1;
            self.queue.schedule(
                self.now + delay,
                EventKind::Deliver {
                    to,
                    from,
                    msg: payload,
                },
            );
            // Stale-replay injection: a duplicate of the surviving
            // copy, delivered `dup_lag` later.
            if self.dup_probability > 0.0 && self.rng.random_bool(self.dup_probability) {
                refs += 1;
                self.queue.schedule(
                    self.now + delay + self.dup_lag,
                    EventKind::Deliver {
                        to,
                        from,
                        msg: payload,
                    },
                );
            }
        }
        // Zero surviving copies drop the payload immediately.
        self.payloads.set_refs(payload, refs);
        self.scratch_neighbors = neighbors;
    }
}

impl<A: Actor + Persist> Simulator<A>
where
    A::Msg: Persist,
{
    /// Serializes the complete simulation state — actors, pending
    /// events (with their tie-breaking insertion sequence numbers),
    /// in-flight payloads, RNG, timers, channel state, metrics, trace,
    /// energy, chaos interposers — into a version-tagged byte
    /// snapshot. [`Simulator::restore`] rebuilds a simulator whose
    /// future is **byte-identical** to this one's.
    ///
    /// # Errors
    ///
    /// Fails with [`CheckpointError::Corrupt`] if the radio's loss
    /// model is a custom one that does not implement
    /// [`LossModel::snapshot`](crate::loss::LossModel::snapshot) —
    /// better than silently dropping channel state.
    pub fn checkpoint(&self) -> Result<Vec<u8>, CheckpointError> {
        let Some(loss) = self.radio.loss().snapshot() else {
            return Err(CheckpointError::Corrupt(
                "loss model does not support checkpointing",
            ));
        };
        let mut w = Writer::new();
        checkpoint::write_header(&mut w);
        self.topology.persist(&mut w);
        loss.persist(&mut w);
        self.radio.delay().persist(&mut w);
        self.radio.jitter().persist(&mut w);
        self.actors.persist(&mut w);
        self.alive.persist(&mut w);
        self.departed.persist(&mut w);
        self.dormant.persist(&mut w);
        self.queue.persist(&mut w);
        self.payloads.persist(&mut w);
        self.now.persist(&mut w);
        self.rng.persist(&mut w);
        self.metrics.persist(&mut w);
        self.energy.persist(&mut w);
        self.trace.persist(&mut w);
        self.timers.persist(&mut w);
        self.node_timers.persist(&mut w);
        self.started.persist(&mut w);
        self.last_harvest.persist(&mut w);
        self.partition.persist(&mut w);
        self.link_lag.persist(&mut w);
        self.dup_probability.persist(&mut w);
        self.dup_lag.persist(&mut w);
        Ok(w.into_bytes())
    }

    /// Rebuilds a simulator from a [`Simulator::checkpoint`] snapshot.
    ///
    /// # Errors
    ///
    /// Fails on truncated, foreign, version-mismatched, or
    /// structurally inconsistent bytes; never panics on untrusted
    /// input.
    pub fn restore(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::new(bytes);
        checkpoint::read_header(&mut r)?;
        let topology = Topology::restore(&mut r)?;
        let loss = LossSnapshot::restore(&mut r)?;
        let delay = SimDuration::restore(&mut r)?;
        let jitter = SimDuration::restore(&mut r)?;
        let radio = RadioConfig::new(loss.rebuild())
            .with_delay(delay)
            .with_jitter(jitter);
        let actors: Vec<A> = Vec::restore(&mut r)?;
        let alive: Vec<bool> = Vec::restore(&mut r)?;
        let departed: Vec<bool> = Vec::restore(&mut r)?;
        let dormant: Vec<bool> = Vec::restore(&mut r)?;
        let queue = EventQueue::restore(&mut r)?;
        let payloads = PayloadArena::restore(&mut r)?;
        let now = SimTime::restore(&mut r)?;
        let rng = StdRng::restore(&mut r)?;
        let metrics = SimMetrics::restore(&mut r)?;
        let energy = EnergyBook::restore(&mut r)?;
        let trace = Trace::restore(&mut r)?;
        let timers = TimerSlab::restore(&mut r)?;
        let node_timers: Vec<Vec<(u64, u32)>> = Vec::restore(&mut r)?;
        let started = bool::restore(&mut r)?;
        let last_harvest = SimTime::restore(&mut r)?;
        let partition: Option<Vec<u32>> = Option::restore(&mut r)?;
        let link_lag = Vec::restore(&mut r)?;
        let dup_probability = f64::restore(&mut r)?;
        let dup_lag = SimDuration::restore(&mut r)?;
        if r.remaining() != 0 {
            return Err(CheckpointError::Corrupt("trailing bytes"));
        }
        let n = topology.len();
        if actors.len() != n
            || alive.len() != n
            || departed.len() != n
            || dormant.len() != n
            || node_timers.len() != n
            || partition.as_ref().is_some_and(|g| g.len() != n)
        {
            return Err(CheckpointError::Corrupt("population size mismatch"));
        }
        if !(0.0..=1.0).contains(&dup_probability) {
            return Err(CheckpointError::Corrupt(
                "duplication probability out of range",
            ));
        }
        Ok(Simulator {
            topology,
            radio,
            actors,
            alive,
            departed,
            dormant,
            queue,
            payloads,
            now,
            rng,
            metrics,
            energy,
            trace,
            timers,
            node_timers,
            started,
            last_harvest,
            partition,
            link_lag,
            dup_probability,
            dup_lag,
            scratch_neighbors: Vec::new(),
            scratch_commands: Vec::new(),
        })
    }
}

impl<A: Actor> std::fmt::Debug for Simulator<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.topology.len())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("radio", &self.radio)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::time::SimDuration;

    /// Broadcasts `count` pings at start and records everything heard.
    #[derive(Default)]
    struct Chatter {
        heard: Vec<(NodeId, u32)>,
        pings: u32,
        timer_fires: Vec<TimerToken>,
    }

    impl Actor for Chatter {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            for i in 0..self.pings {
                ctx.broadcast(i);
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, from: NodeId, msg: &u32) {
            self.heard.push((from, *msg));
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, token: TimerToken) {
            self.timer_fires.push(token);
        }
    }

    fn pair_topology() -> Topology {
        Topology::from_positions(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)], 100.0)
    }

    fn triangle_topology() -> Topology {
        Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(50.0, 0.0),
                Point::new(25.0, 40.0),
            ],
            100.0,
        )
    }

    #[test]
    fn broadcast_reaches_all_neighbors() {
        let mut sim = Simulator::new(triangle_topology(), RadioConfig::lossless(), 1, |id| {
            Chatter {
                pings: if id == NodeId(0) { 1 } else { 0 },
                ..Chatter::default()
            }
        });
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.actor(NodeId(1)).heard, vec![(NodeId(0), 0)]);
        assert_eq!(sim.actor(NodeId(2)).heard, vec![(NodeId(0), 0)]);
        assert!(sim.actor(NodeId(0)).heard.is_empty(), "no self delivery");
        assert_eq!(sim.metrics().transmissions, 1);
        assert_eq!(sim.metrics().deliveries, 2);
    }

    #[test]
    fn total_loss_channel_delivers_nothing() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::bernoulli(1.0), 1, |_| {
            Chatter {
                pings: 3,
                ..Chatter::default()
            }
        });
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.metrics().deliveries, 0);
        assert_eq!(sim.metrics().losses, 6);
    }

    #[test]
    fn crashed_node_is_silent_and_deaf() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 0,
            ..Chatter::default()
        });
        sim.crash_now(NodeId(1));
        sim.actor_mut(NodeId(0)).pings = 1;
        // Restart semantics: node 0 broadcasts at start; node 1 is
        // already dead so the copy is dropped.
        sim.run_until(SimTime::from_millis(10));
        assert!(sim.actor(NodeId(1)).heard.is_empty());
        assert_eq!(sim.metrics().dropped_dead, 1);
        assert!(!sim.is_alive(NodeId(1)));
        assert_eq!(sim.alive_nodes(), vec![NodeId(0)]);
    }

    #[test]
    fn scheduled_crash_takes_effect_at_time() {
        struct TimedPing;
        impl Actor for TimedPing {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.me() == NodeId(0) {
                    // Fire one ping before the crash and one after.
                    ctx.set_timer(SimDuration::from_millis(1), TimerToken(1));
                    ctx.set_timer(SimDuration::from_millis(20), TimerToken(2));
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: &u32) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, _t: TimerToken) {
                ctx.broadcast(0);
            }
        }
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| TimedPing);
        sim.schedule_crash(NodeId(1), SimTime::from_millis(10));
        sim.run_until(SimTime::from_secs(1));
        // First ping delivered, second dropped on the dead node.
        assert_eq!(sim.metrics().deliveries, 1);
        assert_eq!(sim.metrics().dropped_dead, 1);
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        struct TimerTest;
        impl Actor for TimerTest {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(2), TimerToken(2));
                ctx.set_timer(SimDuration::from_millis(1), TimerToken(1));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: TimerToken) {
                assert_eq!(token.0, ctx.now().as_millis(), "token must match schedule");
            }
        }
        let topo = Topology::from_positions(vec![Point::ORIGIN], 100.0);
        let mut sim = Simulator::new(topo, RadioConfig::lossless(), 1, |_| TimerTest);
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.metrics().timers_fired, 2);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct CancelTest;
        impl Actor for CancelTest {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(5), TimerToken(1));
                ctx.set_timer(SimDuration::from_millis(1), TimerToken(2));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: TimerToken) {
                if token == TimerToken(2) {
                    ctx.cancel_timer(TimerToken(1));
                } else {
                    panic!("cancelled timer fired");
                }
            }
        }
        let topo = Topology::from_positions(vec![Point::ORIGIN], 100.0);
        let mut sim = Simulator::new(topo, RadioConfig::lossless(), 1, |_| CancelTest);
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(sim.metrics().timers_fired, 1);
    }

    #[test]
    fn cancel_does_not_eat_newer_timer_with_same_token() {
        // set A (late), cancel token, set B (early): only A must die.
        struct Regress {
            fired: u32,
        }
        impl Actor for Regress {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(10), TimerToken(7));
                ctx.cancel_timer(TimerToken(7));
                ctx.set_timer(SimDuration::from_millis(1), TimerToken(7));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, token: TimerToken) {
                assert_eq!(token, TimerToken(7));
                self.fired += 1;
            }
        }
        let topo = Topology::from_positions(vec![Point::ORIGIN], 100.0);
        let mut sim = Simulator::new(topo, RadioConfig::lossless(), 1, |_| Regress { fired: 0 });
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.actor(NodeId(0)).fired, 1);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(
                triangle_topology(),
                RadioConfig::bernoulli(0.5),
                seed,
                |_| Chatter {
                    pings: 10,
                    ..Chatter::default()
                },
            );
            sim.run_until(SimTime::from_millis(100));
            (sim.metrics().deliveries, sim.actor(NodeId(0)).heard.clone())
        };
        assert_eq!(run(7), run(7));
        // Different seeds should (with overwhelming probability)
        // produce different loss patterns over 60 offered copies.
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn energy_is_charged_for_traffic() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 5,
            ..Chatter::default()
        });
        sim.run_until(SimTime::from_millis(10));
        let model = *sim.energy().model();
        let expected = model.initial - 5.0 * model.tx_cost - 5.0 * model.rx_cost;
        assert!((sim.energy().remaining(NodeId(0)) - expected).abs() < 1e-9);
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 1,
            ..Chatter::default()
        });
        sim.enable_trace();
        sim.run_until(SimTime::from_millis(10));
        let kinds: Vec<TraceKind> = sim.trace().records().iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&TraceKind::Transmit));
        assert!(kinds.contains(&TraceKind::Receive));
    }

    #[test]
    fn run_to_quiescence_counts_events() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 2,
            ..Chatter::default()
        });
        // 2 pings per node = 4 deliveries total (one per neighbour copy).
        let processed = sim.run_to_quiescence(1_000);
        assert_eq!(processed, 4);
        assert!(!sim.step_one());
    }

    #[test]
    fn solar_harvest_replenishes_energy() {
        use crate::energy::EnergyModel;
        // One ping per 100 ms; harvesting outpaces the transmit cost.
        struct Beacon;
        impl Actor for Beacon {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(100), TimerToken(0));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: TimerToken) {
                ctx.broadcast(());
                ctx.set_timer(SimDuration::from_millis(100), TimerToken(0));
            }
        }
        let run = |harvest: f64| {
            let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Beacon);
            sim.set_energy_model(EnergyModel {
                initial: 100.0,
                tx_cost: 1.0,
                rx_cost: 0.1,
                harvest_per_sec: harvest,
            });
            sim.run_until(SimTime::from_secs(5));
            sim.energy().remaining(NodeId(0))
        };
        let drained = run(0.0);
        let harvested = run(20.0); // 2 units per 100 ms vs 1.1 spent
        assert!(
            drained < 50.0,
            "beaconing must drain without harvest: {drained}"
        );
        assert!(
            (harvested - 100.0).abs() < 2.0,
            "harvesting should keep the battery topped up: {harvested}"
        );
    }

    #[test]
    fn radio_can_change_mid_run() {
        // Clean until t=10ms, then total loss: later pings vanish.
        struct Ping;
        impl Actor for Ping {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == NodeId(0) {
                    ctx.set_timer(SimDuration::from_millis(5), TimerToken(0));
                    ctx.set_timer(SimDuration::from_millis(15), TimerToken(1));
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: TimerToken) {
                ctx.broadcast(());
            }
        }
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Ping);
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.metrics().deliveries, 1);
        sim.set_radio(RadioConfig::bernoulli(1.0));
        sim.run_until(SimTime::from_millis(30));
        assert_eq!(
            sim.metrics().deliveries,
            1,
            "storm must drop the second ping"
        );
        assert_eq!(sim.metrics().losses, 1);
    }

    #[test]
    fn timer_slab_stamps_are_spent_on_fire() {
        let mut slab = TimerSlab::default();
        let stamp = slab.alloc();
        assert!(slab.try_fire(stamp), "fresh stamp fires");
        assert!(!slab.try_fire(stamp), "a stamp can only be spent once");
    }

    #[test]
    fn timer_slab_invalidate_rejects_the_stale_stamp() {
        let mut slab = TimerSlab::default();
        let stamp = slab.alloc();
        let (slot, generation) = unpack_timer(stamp);
        slab.invalidate(slot);
        assert!(!slab.try_fire(stamp), "cancelled stamp must not fire");
        // The slot is recycled with a bumped generation: the new stamp
        // fires, the old one stays dead.
        let reused = slab.alloc();
        let (slot2, generation2) = unpack_timer(reused);
        assert_eq!(slot, slot2, "freelist reuses the slot");
        assert_ne!(generation, generation2, "reuse bumps the generation");
        assert!(!slab.try_fire(stamp));
        assert!(slab.try_fire(reused));
    }

    #[test]
    fn timer_slab_stays_bounded_under_cancel_churn() {
        // The old engine grew its `cancelled` tombstone set by one
        // entry per cancel, forever. The slab must recycle instead.
        let mut slab = TimerSlab::default();
        for _ in 0..10_000 {
            let stamp = slab.alloc();
            let (slot, _) = unpack_timer(stamp);
            slab.invalidate(slot);
        }
        assert_eq!(slab.generations.len(), 1, "one slot, recycled 10k times");
        let survivor = slab.alloc();
        assert!(
            slab.try_fire(survivor),
            "generation wrap-around is harmless"
        );
    }

    #[test]
    fn payload_arena_recycles_every_slot() {
        // Lossless fan-out: each payload is stored once, released per
        // delivery, and the slot is free once the last copy lands.
        let mut sim = Simulator::new(triangle_topology(), RadioConfig::lossless(), 1, |_| {
            Chatter {
                pings: 4,
                ..Chatter::default()
            }
        });
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.metrics().deliveries, 24, "4 pings × 3 nodes × 2 peers");
        assert!(
            sim.payloads
                .slots
                .iter()
                .all(|(refs, m)| *refs == 0 && m.is_none()),
            "all payload slots released after quiescence"
        );
        assert_eq!(sim.payloads.free.len(), sim.payloads.slots.len());
    }

    #[test]
    fn payload_arena_frees_fully_lost_transmissions_immediately() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::bernoulli(1.0), 1, |_| {
            Chatter {
                pings: 1,
                ..Chatter::default()
            }
        });
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.metrics().losses, 2);
        assert!(
            sim.payloads.slots.iter().all(|(_, m)| m.is_none()),
            "zero-survivor payloads are dropped at transmit time"
        );
    }

    #[test]
    fn insert_with_refs_counts_down_to_recycling() {
        let mut arena: PayloadArena<u64> = PayloadArena::new();
        let id = arena.insert_with_refs(7, 2);
        assert_eq!(*arena.get(id), 7);
        arena.release(id);
        assert_eq!(*arena.get(id), 7, "one reference still outstanding");
        arena.release(id);
        assert_eq!(arena.free, vec![id.0], "last release recycles the slot");

        // The recycled slot is reused before the vector grows.
        let id2 = arena.insert_with_refs(9, 1);
        assert_eq!(id2.0, id.0);
        assert_eq!(arena.slots.len(), 1);
    }

    #[test]
    fn insert_with_refs_zero_matches_insert_then_set_refs() {
        // The free list is persisted in checkpoints, so its order is
        // observable: the fused call must leave the arena in exactly
        // the state the unfused insert + set_refs(0) pair would.
        let mut fused: PayloadArena<u64> = PayloadArena::new();
        let mut unfused: PayloadArena<u64> = PayloadArena::new();
        for arena in [&mut fused, &mut unfused] {
            let a = arena.insert_with_refs(1, 1);
            let b = arena.insert_with_refs(2, 1);
            arena.release(a);
            arena.release(b);
        }
        let f = fused.insert_with_refs(3, 0);
        let u = unfused.insert(3);
        unfused.set_refs(u, 0);
        assert_eq!(f.0, u.0);
        assert_eq!(fused.free, unfused.free, "free-list order preserved");
        assert!(fused.slots[f.0 as usize].1.is_none());

        // And the next allocation lands on the same slot in both.
        assert_eq!(fused.insert(4).0, unfused.insert(4).0);
    }

    #[test]
    fn schedule_crash_in_the_past_saturates_to_now() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 0,
            ..Chatter::default()
        });
        sim.run_until(SimTime::from_millis(10));
        // A fuzzer-generated plan may ask for t=1 ms when now=10 ms;
        // the crash must land at now instead of aborting the process.
        let effective = sim.schedule_crash(NodeId(1), SimTime::from_millis(1));
        assert_eq!(effective, SimTime::from_millis(10));
        sim.run_until(SimTime::from_millis(11));
        assert!(!sim.is_alive(NodeId(1)));
    }

    #[test]
    fn observer_sees_only_effective_events() {
        // Node 0 pings; node 1 is crashed mid-run, so the second ping
        // is dropped dead and must NOT reach the observer.
        struct Ping;
        impl Actor for Ping {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == NodeId(0) {
                    ctx.set_timer(SimDuration::from_millis(2), TimerToken(0));
                    ctx.set_timer(SimDuration::from_millis(20), TimerToken(1));
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: TimerToken) {
                ctx.broadcast(());
            }
        }
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Ping);
        sim.schedule_crash(NodeId(1), SimTime::from_millis(10));
        let mut seen = Vec::new();
        sim.run_until_observed(SimTime::from_secs(1), &mut |s, ev| {
            assert!(s.now() <= SimTime::from_secs(1));
            seen.push(ev);
        });
        assert!(seen.contains(&SimEvent::Crash { node: NodeId(1) }));
        let deliveries = seen
            .iter()
            .filter(|e| matches!(e, SimEvent::Deliver { .. }))
            .count();
        assert_eq!(deliveries, 1, "post-crash delivery must be filtered");
        // No Deliver/Timer record for node 1 after its crash record.
        let crash_at = seen
            .iter()
            .position(|e| matches!(e, SimEvent::Crash { .. }))
            .unwrap();
        assert!(seen[crash_at + 1..].iter().all(|e| !matches!(
            e,
            SimEvent::Deliver { to: NodeId(1), .. }
                | SimEvent::Timer {
                    node: NodeId(1),
                    ..
                }
        )));
    }

    #[test]
    fn observed_runs_match_unobserved_runs() {
        let run = |observed: bool| {
            let mut sim =
                Simulator::new(triangle_topology(), RadioConfig::bernoulli(0.4), 9, |_| {
                    Chatter {
                        pings: 8,
                        ..Chatter::default()
                    }
                });
            if observed {
                sim.run_until_observed(SimTime::from_millis(50), &mut |_, _| {});
            } else {
                sim.run_until(SimTime::from_millis(50));
            }
            (sim.metrics().clone(), sim.actor(NodeId(2)).heard.clone())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn partition_blocks_cross_group_traffic_and_heals() {
        let mut sim = Simulator::new(triangle_topology(), RadioConfig::lossless(), 1, |_| {
            Chatter::default()
        });
        sim.set_partition(vec![0, 1, 0]);
        sim.actor_mut(NodeId(0)).pings = 1;
        sim.run_until(SimTime::from_millis(5));
        // Node 1 is across the partition: its copy is dropped as loss.
        assert!(sim.actor(NodeId(1)).heard.is_empty());
        assert_eq!(sim.actor(NodeId(2)).heard.len(), 1);
        assert_eq!(sim.metrics().losses, 1);
        sim.clear_partition();
        // After healing, need fresh traffic: drive via a timer-free
        // re-broadcast by crashing nothing and re-running on_start is
        // not possible, so check the healed loss count stays flat.
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.metrics().losses, 1);
    }

    #[test]
    fn link_lag_delays_only_the_lagged_link() {
        let mut sim = Simulator::new(triangle_topology(), RadioConfig::lossless(), 1, |_| {
            Chatter::default()
        });
        sim.set_link_lag(NodeId(0), NodeId(1), SimDuration::from_millis(7));
        sim.actor_mut(NodeId(0)).pings = 1;
        let mut arrivals = Vec::new();
        sim.run_until_observed(SimTime::from_millis(20), &mut |s, ev| {
            if let SimEvent::Deliver { to, .. } = ev {
                arrivals.push((to, s.now()));
            }
        });
        let at = |n: u32| arrivals.iter().find(|(to, _)| *to == NodeId(n)).unwrap().1;
        assert_eq!(at(1), at(2) + SimDuration::from_millis(7));
    }

    #[test]
    fn duplication_replays_copies_late() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 10,
            ..Chatter::default()
        });
        sim.set_duplication(1.0, SimDuration::from_millis(3));
        sim.run_until(SimTime::from_millis(20));
        // Every surviving copy arrives twice: 10 pings per node → 20
        // originals + 20 duplicates.
        assert_eq!(sim.metrics().deliveries, 40);
        assert_eq!(sim.actor(NodeId(1)).heard.len(), 20);
    }

    #[test]
    fn debug_output_is_informative() {
        let sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 0,
            ..Chatter::default()
        });
        let s = format!("{sim:?}");
        assert!(s.contains("Simulator"));
        assert!(s.contains("nodes"));
    }

    crate::impl_persist!(Chatter {
        heard,
        pings,
        timer_fires,
    });

    #[test]
    fn dormant_node_misses_traffic_until_it_joins() {
        // Node 1 is a late arrival: it must miss node 0's start-time
        // ping, then run its own on_start when the join fires.
        let mut sim = Simulator::new(triangle_topology(), RadioConfig::lossless(), 1, |id| {
            Chatter {
                pings: if id == NodeId(1) { 3 } else { 1 },
                ..Chatter::default()
            }
        });
        sim.set_dormant(NodeId(1));
        assert!(sim.is_dormant(NodeId(1)));
        assert!(!sim.is_alive(NodeId(1)));
        sim.schedule_join(NodeId(1), SimTime::from_millis(10));
        let mut events = Vec::new();
        sim.run_until_observed(SimTime::from_millis(30), &mut |_, ev| events.push(ev));
        assert!(events.contains(&SimEvent::Join { node: NodeId(1) }));
        // The dormant node heard nothing from the start-time pings...
        let early = sim
            .actor(NodeId(1))
            .heard
            .iter()
            .filter(|&&(from, _)| from == NodeId(0))
            .count();
        assert_eq!(early, 0, "start-time ping must be dropped, not heard");
        // ...but its own on_start ran at join time: 3 pings, heard by
        // both neighbours.
        assert_eq!(
            sim.actors()
                .filter(|&(id, _)| id != NodeId(1))
                .map(|(_, a)| a.heard.iter().filter(|&&(f, _)| f == NodeId(1)).count())
                .sum::<usize>(),
            6
        );
        assert!(!sim.is_dormant(NodeId(1)));
        assert!(sim.is_alive(NodeId(1)));
    }

    #[test]
    fn leave_announces_then_silences_and_is_not_a_crash() {
        struct Leaver {
            farewell_heard: bool,
        }
        impl Actor for Leaver {
            type Msg = u8;
            fn on_message(&mut self, _: &mut Ctx<'_, u8>, _: NodeId, msg: &u8) {
                if *msg == 99 {
                    self.farewell_heard = true;
                }
            }
            fn on_leave(&mut self, ctx: &mut Ctx<'_, u8>) {
                ctx.broadcast(99);
            }
        }
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Leaver {
            farewell_heard: false,
        });
        sim.schedule_leave(NodeId(0), SimTime::from_millis(5));
        let mut events = Vec::new();
        sim.run_until_observed(SimTime::from_millis(20), &mut |_, ev| events.push(ev));
        assert!(events.contains(&SimEvent::Leave { node: NodeId(0) }));
        assert!(
            sim.actor(NodeId(1)).farewell_heard,
            "on_leave broadcast must go out before the node goes silent"
        );
        assert!(!sim.is_alive(NodeId(0)));
        assert!(sim.has_departed(NodeId(0)));
        assert_eq!(sim.departed_nodes(), vec![NodeId(0)]);
        assert_eq!(sim.crashed_nodes(), Vec::new(), "a leave is not a crash");
    }

    #[test]
    fn rejoin_revives_without_stale_timers() {
        struct Phoenix {
            fired: u32,
            rejoined: bool,
        }
        impl Actor for Phoenix {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(50), TimerToken(1));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerToken) {
                self.fired += 1;
            }
            fn on_rejoin(&mut self, _: &mut Ctx<'_, ()>) {
                self.rejoined = true;
            }
        }
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Phoenix {
            fired: 0,
            rejoined: false,
        });
        sim.schedule_crash(NodeId(0), SimTime::from_millis(10));
        sim.schedule_rejoin(NodeId(0), SimTime::from_millis(20));
        let mut events = Vec::new();
        sim.run_until_observed(SimTime::from_millis(100), &mut |_, ev| events.push(ev));
        assert!(events.contains(&SimEvent::Rejoin { node: NodeId(0) }));
        let phoenix = sim.actor(NodeId(0));
        assert!(phoenix.rejoined);
        assert_eq!(
            phoenix.fired, 0,
            "the pre-crash timer is stale and must not fire after rejoin"
        );
        assert!(sim.is_alive(NodeId(0)));
        assert!(!sim.has_departed(NodeId(0)));
        // Node 1 never crashed: its timer fires normally.
        assert_eq!(sim.actor(NodeId(1)).fired, 1);
    }

    #[test]
    fn churn_apis_never_panic_on_garbage_input() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 1,
            ..Chatter::default()
        });
        sim.run_until(SimTime::from_millis(10));
        // Unknown node ids are ignored; past timestamps saturate.
        assert_eq!(
            sim.schedule_join(NodeId(99), SimTime::from_millis(1)),
            SimTime::from_millis(10)
        );
        sim.schedule_leave(NodeId(99), SimTime::ZERO);
        sim.schedule_rejoin(NodeId(99), SimTime::ZERO);
        sim.schedule_crash(NodeId(99), SimTime::ZERO);
        sim.set_dormant(NodeId(99));
        // Joining a present node and rejoining an alive node dissolve
        // into no-ops at dispatch time.
        sim.schedule_join(NodeId(0), SimTime::from_millis(11));
        sim.schedule_rejoin(NodeId(1), SimTime::from_millis(11));
        let mut effective = Vec::new();
        sim.run_until_observed(SimTime::from_millis(15), &mut |_, ev| effective.push(ev));
        assert!(
            effective.is_empty(),
            "none of the garbage events may be effective: {effective:?}"
        );
        // Leaving a node that is already dead is a no-op too.
        sim.crash_now(NodeId(1));
        sim.schedule_leave(NodeId(1), SimTime::from_millis(16));
        let mut late = Vec::new();
        sim.run_until_observed(SimTime::from_millis(20), &mut |_, ev| late.push(ev));
        assert!(late.is_empty(), "leave of a dead node fired: {late:?}");
        assert!(sim.is_alive(NodeId(0)));
        assert!(!sim.is_alive(NodeId(1)));
    }

    #[test]
    fn set_dormant_after_start_is_ignored() {
        let mut sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 0,
            ..Chatter::default()
        });
        sim.run_until(SimTime::from_millis(1));
        sim.set_dormant(NodeId(1));
        assert!(!sim.is_dormant(NodeId(1)));
        assert!(sim.is_alive(NodeId(1)));
    }

    #[test]
    fn checkpoint_restore_resumes_byte_identically() {
        let build = || {
            let mut sim = Simulator::new(
                triangle_topology(),
                RadioConfig::bernoulli(0.3)
                    .with_delay(SimDuration::from_millis(1))
                    .with_jitter(SimDuration::from_micros(500)),
                7,
                |_| Chatter {
                    pings: 6,
                    ..Chatter::default()
                },
            );
            sim.enable_trace();
            sim.set_duplication(0.2, SimDuration::from_millis(2));
            sim
        };
        // Uninterrupted reference run.
        let mut reference = build();
        reference.schedule_crash(NodeId(2), SimTime::from_millis(3));
        reference.schedule_rejoin(NodeId(2), SimTime::from_millis(6));
        reference.run_until(SimTime::from_millis(40));

        // Interrupted run: snapshot mid-flight, restore, continue.
        let mut first_half = build();
        first_half.schedule_crash(NodeId(2), SimTime::from_millis(3));
        first_half.schedule_rejoin(NodeId(2), SimTime::from_millis(6));
        first_half.run_until(SimTime::from_millis(4));
        let snapshot = first_half.checkpoint().expect("checkpoint");
        drop(first_half);
        let mut resumed: Simulator<Chatter> = Simulator::restore(&snapshot).expect("restore");
        resumed.run_until(SimTime::from_millis(40));

        assert_eq!(resumed.metrics(), reference.metrics());
        assert_eq!(resumed.trace().records(), reference.trace().records());
        for n in reference.topology().node_ids() {
            assert_eq!(resumed.actor(n).heard, reference.actor(n).heard);
            assert_eq!(resumed.actor(n).timer_fires, reference.actor(n).timer_fires);
            assert_eq!(resumed.is_alive(n), reference.is_alive(n));
        }
        // The strongest form of the contract: the final snapshots are
        // byte-identical.
        assert_eq!(
            resumed.checkpoint().unwrap(),
            reference.checkpoint().unwrap()
        );
    }

    #[test]
    fn restore_rejects_corrupt_input_without_panicking() {
        let sim = Simulator::new(pair_topology(), RadioConfig::lossless(), 1, |_| Chatter {
            pings: 2,
            ..Chatter::default()
        });
        let bytes = sim.checkpoint().unwrap();
        assert!(Simulator::<Chatter>::restore(b"garbage").is_err());
        assert!(Simulator::<Chatter>::restore(&[]).is_err());
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Simulator::<Chatter>::restore(&bytes[..cut]).is_err(),
                "truncation at {cut} must be detected"
            );
        }
        assert!(Simulator::<Chatter>::restore(&bytes).is_ok());
    }
}
