//! Ad hoc wireless network substrate for the cluster-based failure
//! detection service (CBFD).
//!
//! This crate implements everything the DSN 2004 paper *assumes* about
//! its environment (Sections 2.2 and 5):
//!
//! * a **unit-disk radio model** — every host has the same transmission
//!   range `R`, and a link exists between two hosts iff their distance
//!   is at most `R`;
//! * **promiscuous receiving** — a transmission is heard by *every*
//!   in-range host, regardless of the intended recipient, so the only
//!   physical-layer primitive is a local broadcast;
//! * **per-receiver i.i.d. message loss** — a transmitted message
//!   independently fails to reach each in-range neighbour with
//!   probability `p` (the paper's channel model; burst-loss and
//!   distance-dependent models are provided as extensions);
//! * **bounded delivery delay** — within the transmission range a
//!   message arrives within a known bound `Thop`;
//! * a **discrete-event simulator** that runs per-node protocol actors
//!   against this radio model with deterministic, seedable randomness,
//!   fail-stop crash injection, and message/energy accounting.
//!
//! # Quick example
//!
//! ```
//! use cbfd_net::prelude::*;
//!
//! // A trivial actor that broadcasts one message and counts receipts.
//! #[derive(Default)]
//! struct Pinger { heard: usize }
//!
//! impl Actor for Pinger {
//!     type Msg = ();
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
//!         ctx.broadcast(());
//!     }
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: &()) {
//!         self.heard += 1;
//!     }
//! }
//!
//! let positions = vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
//! let topology = Topology::from_positions(positions, 100.0);
//! let mut sim = Simulator::new(topology, RadioConfig::lossless(), 42, |_id| Pinger::default());
//! sim.run_until(SimTime::from_millis(10));
//! assert_eq!(sim.actor(NodeId(1)).heard, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod chaos;
pub mod checkpoint;
pub mod energy;
pub mod event;
pub mod geometry;
pub mod id;
pub mod loss;
pub mod metrics;
pub mod mobility;
pub mod par;
pub mod placement;
pub mod radio;
pub mod rng;
pub mod sim;
pub mod tiled;
pub mod time;
pub mod topology;
pub mod trace;

#[cfg(test)]
mod differential;

/// Convenient glob-import of the most commonly used substrate types.
pub mod prelude {
    pub use crate::actor::{Actor, Ctx, TimerToken};
    pub use crate::geometry::Point;
    pub use crate::id::NodeId;
    pub use crate::loss::LossModel;
    pub use crate::par::{self, par_map};
    pub use crate::placement::{self, Placement};
    pub use crate::radio::RadioConfig;
    pub use crate::sim::Simulator;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::Topology;
}
