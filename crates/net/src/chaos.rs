//! Chaos engine substrate: declarative fault plans, a seeded plan
//! generator, and a deterministic shrinker.
//!
//! The paper's guarantees are probabilistic completeness and accuracy
//! under i.i.d. message loss and fail-stop crashes; this module
//! systematically explores fault *schedules* well beyond that model —
//! correlated burst loss, partitions, delay jitter past `Thop`,
//! stale-message replay, and crash cascades.
//!
//! A [`FaultPlan`] is a declarative, seed-reproducible schedule of
//! [`FaultPrimitive`]s. Point faults (crashes, cascades) compile
//! directly onto the simulator's event queue via
//! [`Simulator::schedule_crash`]; windowed faults (storms, partitions,
//! lag, replay) compile to a sorted action list that [`run_plan`]
//! interleaves with [`Simulator::run_until_observed`] segments, so an
//! online monitor observes every effective event while the plan
//! executes. Everything is deterministic: the same `(plan, seed)` pair
//! produces a byte-identical event stream for any worker count.
//!
//! [`shrink`] reduces a failing plan to a minimal reproducing schedule
//! by greedy chunk removal (delta debugging) followed by primitive
//! weakening, re-testing the candidate after every step with a
//! caller-supplied oracle.

use crate::actor::Actor;
use crate::id::NodeId;
use crate::loss::GilbertElliott;
use crate::radio::RadioConfig;
use crate::sim::{SimEvent, Simulator};
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// One scheduled fault.
///
/// Windowed primitives act over `[from, until)`; when a window closes,
/// the channel is restored to the plan's baseline (overlapping channel
/// windows therefore resolve to "latest action wins, first close
/// restores the baseline" — the compiled schedule stays deterministic
/// either way).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPrimitive {
    /// Fail-stop crash of `node` at `at`.
    Crash {
        /// Crash instant.
        at: SimTime,
        /// Crashing node.
        node: NodeId,
    },
    /// A cascade: `nodes[i]` crashes at `start + i·interval`.
    Cascade {
        /// First crash instant.
        start: SimTime,
        /// Spacing between consecutive crashes.
        interval: SimDuration,
        /// Victims, in crash order.
        nodes: Vec<NodeId>,
    },
    /// Transient i.i.d. loss storm: the channel's loss probability is
    /// raised to `p` for the window.
    LossStorm {
        /// Window start.
        from: SimTime,
        /// Window end (baseline restored).
        until: SimTime,
        /// Storm loss probability.
        p: f64,
    },
    /// Correlated Gilbert–Elliott burst storm for the window; the good
    /// state keeps the plan's baseline loss probability.
    BurstStorm {
        /// Window start.
        from: SimTime,
        /// Window end (baseline restored).
        until: SimTime,
        /// Loss probability in the bad state.
        p_bad: f64,
        /// Good→bad transition probability per offered copy.
        p_gb: f64,
        /// Bad→good transition probability per offered copy.
        p_bg: f64,
    },
    /// Network partition: nodes in different groups cannot hear each
    /// other for the window.
    Partition {
        /// Window start.
        from: SimTime,
        /// Window end (partition heals).
        until: SimTime,
        /// Group id per node (length = network size).
        groups: Vec<u32>,
    },
    /// Uniform delivery-delay jitter added to every copy during the
    /// window (stressing the paper's `Thop` bounded-delay assumption).
    DelayJitter {
        /// Window start.
        from: SimTime,
        /// Window end (baseline restored).
        until: SimTime,
        /// Maximum extra jitter.
        jitter: SimDuration,
    },
    /// Extra delivery lag on the directed link `a → b` for the window.
    LinkLag {
        /// Window start.
        from: SimTime,
        /// Window end (lag removed).
        until: SimTime,
        /// Transmitting endpoint.
        a: NodeId,
        /// Receiving endpoint.
        b: NodeId,
        /// Extra per-copy delay.
        lag: SimDuration,
    },
    /// Duplicate/stale replay: each surviving copy is duplicated with
    /// probability `prob`, the duplicate arriving `lag` later.
    Replay {
        /// Window start.
        from: SimTime,
        /// Window end (duplication disabled).
        until: SimTime,
        /// Per-copy duplication probability.
        prob: f64,
        /// Staleness of the replayed copy.
        lag: SimDuration,
    },
    /// Late arrival: the dormant node `node` powers up and runs its
    /// start hook at `at` (v2 churn primitive; the campaign driver
    /// marks join targets dormant before the run).
    Join {
        /// Activation instant.
        at: SimTime,
        /// Joining node.
        node: NodeId,
    },
    /// Graceful departure of `node` at `at`: the node announces its
    /// leave and withdraws, which must *not* trip the failure rule.
    Leave {
        /// Departure instant.
        at: SimTime,
        /// Leaving node.
        node: NodeId,
    },
    /// Return of a crashed or departed node at `at`, with whatever
    /// stale state it held when it went down.
    Rejoin {
        /// Comeback instant.
        at: SimTime,
        /// Returning node.
        node: NodeId,
    },
}

impl FaultPrimitive {
    /// The artifact-format tag naming this primitive kind.
    pub fn to_text_tag(&self) -> &'static str {
        match self {
            FaultPrimitive::Crash { .. } => "crash",
            FaultPrimitive::Cascade { .. } => "cascade",
            FaultPrimitive::LossStorm { .. } => "loss_storm",
            FaultPrimitive::BurstStorm { .. } => "burst_storm",
            FaultPrimitive::Partition { .. } => "partition",
            FaultPrimitive::DelayJitter { .. } => "delay_jitter",
            FaultPrimitive::LinkLag { .. } => "link_lag",
            FaultPrimitive::Replay { .. } => "replay",
            FaultPrimitive::Join { .. } => "join",
            FaultPrimitive::Leave { .. } => "leave",
            FaultPrimitive::Rejoin { .. } => "rejoin",
        }
    }

    /// Whether this is one of the v2 churn primitives (their presence
    /// bumps the artifact header to `cbfd-fault-plan v2`).
    pub fn is_churn(&self) -> bool {
        matches!(
            self,
            FaultPrimitive::Join { .. }
                | FaultPrimitive::Leave { .. }
                | FaultPrimitive::Rejoin { .. }
        )
    }
}

/// A deterministic, replayable fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Baseline i.i.d. loss probability of the channel between storm
    /// windows (and of the good state inside burst storms).
    pub baseline_p: f64,
    /// Nominal duration the plan was generated for (the campaign's run
    /// deadline; primitives beyond it never fire).
    pub horizon: SimTime,
    /// The scheduled faults.
    pub primitives: Vec<FaultPrimitive>,
}

/// Bounds for the randomized plan generator.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanConfig {
    /// Network size (node ids are sampled below this).
    pub nodes: usize,
    /// Plan horizon; windows and crashes are sampled inside it.
    pub horizon: SimTime,
    /// Baseline channel loss probability.
    pub baseline_p: f64,
    /// Upper bound on sampled primitives per plan (≥ 1).
    pub max_primitives: usize,
    /// Upper bound on victims per cascade.
    pub max_cascade: usize,
    /// Whether the generator also samples the v2 churn primitives
    /// (joins, graceful leaves, rejoins). Off by default so pinned-seed
    /// v1 plans stay byte-identical.
    pub churn: bool,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            nodes: 100,
            horizon: SimTime::from_millis(800),
            baseline_p: 0.1,
            max_primitives: 6,
            max_cascade: 8,
            churn: false,
        }
    }
}

/// A windowed action compiled from a plan, applied between observed
/// run segments.
#[derive(Debug, Clone)]
enum Action {
    Bernoulli { p: f64, jitter: SimDuration },
    Burst { p_bad: f64, p_gb: f64, p_bg: f64 },
    RestoreRadio,
    PartitionOn(Vec<u32>),
    PartitionOff,
    LinkLagOn(NodeId, NodeId, SimDuration),
    LinkLagOff(NodeId, NodeId),
    ReplayOn(f64, SimDuration),
    ReplayOff,
}

impl FaultPlan {
    /// An empty plan over a lossless-by-`p` baseline.
    pub fn empty(baseline_p: f64, horizon: SimTime) -> Self {
        FaultPlan {
            baseline_p,
            horizon,
            primitives: Vec::new(),
        }
    }

    /// Samples a randomized plan from `seed`; the same `(seed, config)`
    /// pair always yields the same plan.
    pub fn generate(seed: u64, config: &PlanConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = config.horizon.as_micros().max(8);
        let node = |rng: &mut StdRng| NodeId(rng.random_range(0..config.nodes.max(1) as u32));
        let window = |rng: &mut StdRng| {
            let from = rng.random_range(0..h * 3 / 4);
            let len = rng.random_range(h / 16..=h / 4);
            (
                SimTime::from_micros(from),
                SimTime::from_micros((from + len).min(h)),
            )
        };
        let count = rng.random_range(1..=config.max_primitives.max(1));
        let kinds: u32 = if config.churn { 11 } else { 8 };
        let mut primitives = Vec::with_capacity(count);
        for _ in 0..count {
            let primitive = match rng.random_range(0..kinds) {
                0 => FaultPrimitive::Crash {
                    at: SimTime::from_micros(rng.random_range(0..h)),
                    node: node(&mut rng),
                },
                1 => {
                    let k = rng.random_range(2..=config.max_cascade.max(2));
                    FaultPrimitive::Cascade {
                        start: SimTime::from_micros(rng.random_range(0..h / 2)),
                        interval: SimDuration::from_micros(rng.random_range(5_000..=h / 8 + 5_000)),
                        nodes: (0..k).map(|_| node(&mut rng)).collect(),
                    }
                }
                2 => {
                    let (from, until) = window(&mut rng);
                    FaultPrimitive::LossStorm {
                        from,
                        until,
                        p: rng.random_range(0.2..0.8),
                    }
                }
                3 => {
                    let (from, until) = window(&mut rng);
                    FaultPrimitive::BurstStorm {
                        from,
                        until,
                        p_bad: rng.random_range(0.6..1.0),
                        p_gb: rng.random_range(0.05..0.4),
                        p_bg: rng.random_range(0.1..0.6),
                    }
                }
                4 => {
                    let (from, until) = window(&mut rng);
                    let groups = (0..config.nodes)
                        .map(|_| u32::from(rng.random_bool(0.5)))
                        .collect();
                    FaultPrimitive::Partition {
                        from,
                        until,
                        groups,
                    }
                }
                5 => {
                    let (from, until) = window(&mut rng);
                    FaultPrimitive::DelayJitter {
                        from,
                        until,
                        jitter: SimDuration::from_micros(rng.random_range(500..20_000)),
                    }
                }
                6 => {
                    let (from, until) = window(&mut rng);
                    FaultPrimitive::LinkLag {
                        from,
                        until,
                        a: node(&mut rng),
                        b: node(&mut rng),
                        lag: SimDuration::from_micros(rng.random_range(1_000..50_000)),
                    }
                }
                7 => {
                    let (from, until) = window(&mut rng);
                    FaultPrimitive::Replay {
                        from,
                        until,
                        prob: rng.random_range(0.1..0.5),
                        lag: SimDuration::from_micros(rng.random_range(2_000..=h / 8 + 2_000)),
                    }
                }
                8 => FaultPrimitive::Join {
                    at: SimTime::from_micros(rng.random_range(0..h)),
                    node: node(&mut rng),
                },
                9 => FaultPrimitive::Leave {
                    at: SimTime::from_micros(rng.random_range(0..h)),
                    node: node(&mut rng),
                },
                _ => FaultPrimitive::Rejoin {
                    at: SimTime::from_micros(rng.random_range(0..h)),
                    node: node(&mut rng),
                },
            };
            primitives.push(primitive);
        }
        FaultPlan {
            baseline_p: config.baseline_p,
            horizon: config.horizon,
            primitives,
        }
    }

    /// Every `(instant, victim)` pair the plan's point faults produce,
    /// sorted by time (stable on ties).
    pub fn crash_schedule(&self) -> Vec<(SimTime, NodeId)> {
        let mut crashes = Vec::new();
        for p in &self.primitives {
            match p {
                FaultPrimitive::Crash { at, node } => crashes.push((*at, *node)),
                FaultPrimitive::Cascade {
                    start,
                    interval,
                    nodes,
                } => {
                    for (i, n) in nodes.iter().enumerate() {
                        crashes.push((*start + *interval * i as u64, *n));
                    }
                }
                _ => {}
            }
        }
        crashes.sort_by_key(|&(at, _)| at);
        crashes
    }

    /// Whether the plan contains any v2 churn primitive.
    pub fn has_churn(&self) -> bool {
        self.primitives.iter().any(FaultPrimitive::is_churn)
    }

    /// The distinct targets of the plan's [`FaultPrimitive::Join`]
    /// primitives, in first-mention order — the nodes a driver must
    /// mark dormant before the run so their activation is a real late
    /// arrival.
    pub fn join_targets(&self) -> Vec<NodeId> {
        let mut targets = Vec::new();
        for p in &self.primitives {
            if let FaultPrimitive::Join { node, .. } = p {
                if !targets.contains(node) {
                    targets.push(*node);
                }
            }
        }
        targets
    }

    /// Every `(instant, node, primitive-tag)` lifecycle transition the
    /// plan's churn primitives produce, sorted by time (stable on
    /// ties).
    pub fn churn_schedule(&self) -> Vec<(SimTime, NodeId, &'static str)> {
        let mut churn = Vec::new();
        for p in &self.primitives {
            match p {
                FaultPrimitive::Join { at, node } => churn.push((*at, *node, "join")),
                FaultPrimitive::Leave { at, node } => churn.push((*at, *node, "leave")),
                FaultPrimitive::Rejoin { at, node } => churn.push((*at, *node, "rejoin")),
                _ => {}
            }
        }
        churn.sort_by_key(|&(at, _, _)| at);
        churn
    }

    /// Compiles the windowed primitives to a time-sorted action list.
    fn window_actions(&self) -> Vec<(SimTime, Action)> {
        let mut actions: Vec<(SimTime, Action)> = Vec::new();
        for p in &self.primitives {
            match p {
                FaultPrimitive::Crash { .. }
                | FaultPrimitive::Cascade { .. }
                | FaultPrimitive::Join { .. }
                | FaultPrimitive::Leave { .. }
                | FaultPrimitive::Rejoin { .. } => {}
                FaultPrimitive::LossStorm { from, until, p } => {
                    actions.push((
                        *from,
                        Action::Bernoulli {
                            p: *p,
                            jitter: SimDuration::ZERO,
                        },
                    ));
                    actions.push((*until, Action::RestoreRadio));
                }
                FaultPrimitive::BurstStorm {
                    from,
                    until,
                    p_bad,
                    p_gb,
                    p_bg,
                } => {
                    actions.push((
                        *from,
                        Action::Burst {
                            p_bad: *p_bad,
                            p_gb: *p_gb,
                            p_bg: *p_bg,
                        },
                    ));
                    actions.push((*until, Action::RestoreRadio));
                }
                FaultPrimitive::Partition {
                    from,
                    until,
                    groups,
                } => {
                    actions.push((*from, Action::PartitionOn(groups.clone())));
                    actions.push((*until, Action::PartitionOff));
                }
                FaultPrimitive::DelayJitter {
                    from,
                    until,
                    jitter,
                } => {
                    actions.push((
                        *from,
                        Action::Bernoulli {
                            p: self.baseline_p,
                            jitter: *jitter,
                        },
                    ));
                    actions.push((*until, Action::RestoreRadio));
                }
                FaultPrimitive::LinkLag {
                    from,
                    until,
                    a,
                    b,
                    lag,
                } => {
                    actions.push((*from, Action::LinkLagOn(*a, *b, *lag)));
                    actions.push((*until, Action::LinkLagOff(*a, *b)));
                }
                FaultPrimitive::Replay {
                    from,
                    until,
                    prob,
                    lag,
                } => {
                    actions.push((*from, Action::ReplayOn(*prob, *lag)));
                    actions.push((*until, Action::ReplayOff));
                }
            }
        }
        actions.sort_by_key(|&(at, _)| at);
        actions
    }
}

/// Executes `plan` on `sim` up to `deadline`, invoking `observe` after
/// every effective event (see [`SimEvent`]).
///
/// Crashes are compiled onto the event queue up front; windowed faults
/// are applied between observed run segments at their exact instants.
/// Primitives that name nodes outside the topology (e.g. a plan
/// replayed against a smaller network) are skipped rather than
/// panicking, so machine-generated schedules can never abort a
/// campaign.
pub fn run_plan<A: Actor>(
    sim: &mut Simulator<A>,
    plan: &FaultPlan,
    deadline: SimTime,
    observe: &mut dyn FnMut(&Simulator<A>, SimEvent),
) {
    let n = sim.topology().len();
    for (at, node) in plan.crash_schedule() {
        if node.index() < n && at <= deadline {
            sim.schedule_crash(node, at);
        }
    }
    for (at, node, kind) in plan.churn_schedule() {
        if node.index() >= n || at > deadline {
            continue;
        }
        // The schedule_* APIs are saturating and no-op on nonsensical
        // transitions, so any generated churn schedule is safe.
        match kind {
            "join" => {
                sim.schedule_join(node, at);
            }
            "leave" => {
                sim.schedule_leave(node, at);
            }
            _ => {
                sim.schedule_rejoin(node, at);
            }
        }
    }
    for (at, action) in plan.window_actions() {
        if at > deadline {
            break;
        }
        // Windows are inclusive of `from`: run strictly *before* the
        // action instant so transmissions at `at` itself already see
        // the new channel state.
        if at > sim.now() && at > SimTime::ZERO {
            sim.run_until_observed(at - SimDuration::from_micros(1), observe);
        }
        apply_action(sim, &action, plan.baseline_p, n);
    }
    sim.run_until_observed(deadline, observe);
}

fn apply_action<A: Actor>(sim: &mut Simulator<A>, action: &Action, baseline_p: f64, n: usize) {
    match action {
        Action::Bernoulli { p, jitter } => {
            sim.set_radio(RadioConfig::bernoulli(*p).with_jitter(*jitter));
        }
        Action::Burst { p_bad, p_gb, p_bg } => {
            sim.set_radio(RadioConfig::new(Box::new(GilbertElliott::new(
                baseline_p, *p_bad, *p_gb, *p_bg,
            ))));
        }
        Action::RestoreRadio => sim.set_radio(RadioConfig::bernoulli(baseline_p)),
        Action::PartitionOn(groups) => {
            if groups.len() == n {
                sim.set_partition(groups.clone());
            }
        }
        Action::PartitionOff => sim.clear_partition(),
        Action::LinkLagOn(a, b, lag) => {
            if a.index() < n && b.index() < n {
                sim.set_link_lag(*a, *b, *lag);
            }
        }
        Action::LinkLagOff(a, b) => sim.remove_link_lag(*a, *b),
        Action::ReplayOn(prob, lag) => sim.set_duplication(*prob, *lag),
        Action::ReplayOff => sim.set_duplication(0.0, SimDuration::ZERO),
    }
}

/// The engine surface a [`FaultPlan`] needs to drive a run: scheduling
/// churn, swapping channel state between windows, and advancing time.
///
/// Implemented by the legacy [`Simulator`], the single-queue
/// [`CanonicalSim`](crate::tiled::CanonicalSim), and the spatially
/// tiled [`TiledSim`](crate::tiled::TiledSim), so the same plan can be
/// replayed on any engine — the tiling differential suite leans on
/// this to compare engines under identical fault schedules (identical
/// `run_until` split points included, which matters for energy-harvest
/// float rounding).
pub trait PlanHost {
    /// Number of nodes in the topology.
    fn node_count(&self) -> usize;
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// Advances the run to `deadline`.
    fn run_until(&mut self, deadline: SimTime);
    /// Schedules a fail-stop crash (saturating, non-panicking).
    fn schedule_crash(&mut self, node: NodeId, at: SimTime);
    /// Schedules the activation of a dormant node.
    fn schedule_join(&mut self, node: NodeId, at: SimTime);
    /// Schedules a graceful withdrawal.
    fn schedule_leave(&mut self, node: NodeId, at: SimTime);
    /// Schedules the return of a crashed or departed node.
    fn schedule_rejoin(&mut self, node: NodeId, at: SimTime);
    /// Marks a node as a late arrival (pre-start only).
    fn set_dormant(&mut self, node: NodeId);
    /// Swaps the channel configuration.
    fn set_radio(&mut self, radio: RadioConfig);
    /// Imposes a partition (`group_of` has one entry per node).
    fn set_partition(&mut self, group_of: Vec<u32>);
    /// Heals any partition.
    fn clear_partition(&mut self);
    /// Adds delivery lag to the directed link `from → to`.
    fn set_link_lag(&mut self, from: NodeId, to: NodeId, extra: SimDuration);
    /// Removes the lag on `from → to`.
    fn remove_link_lag(&mut self, from: NodeId, to: NodeId);
    /// Sets message duplication.
    fn set_duplication(&mut self, probability: f64, lag: SimDuration);
}

macro_rules! impl_plan_host_body {
    () => {
        fn node_count(&self) -> usize {
            self.topology().len()
        }
        fn now(&self) -> SimTime {
            self.now()
        }
        fn run_until(&mut self, deadline: SimTime) {
            self.run_until(deadline);
        }
        fn schedule_crash(&mut self, node: NodeId, at: SimTime) {
            self.schedule_crash(node, at);
        }
        fn schedule_join(&mut self, node: NodeId, at: SimTime) {
            self.schedule_join(node, at);
        }
        fn schedule_leave(&mut self, node: NodeId, at: SimTime) {
            self.schedule_leave(node, at);
        }
        fn schedule_rejoin(&mut self, node: NodeId, at: SimTime) {
            self.schedule_rejoin(node, at);
        }
        fn set_dormant(&mut self, node: NodeId) {
            self.set_dormant(node);
        }
        fn set_radio(&mut self, radio: RadioConfig) {
            self.set_radio(radio);
        }
        fn set_partition(&mut self, group_of: Vec<u32>) {
            self.set_partition(group_of);
        }
        fn clear_partition(&mut self) {
            self.clear_partition();
        }
        fn set_link_lag(&mut self, from: NodeId, to: NodeId, extra: SimDuration) {
            self.set_link_lag(from, to, extra);
        }
        fn remove_link_lag(&mut self, from: NodeId, to: NodeId) {
            self.remove_link_lag(from, to);
        }
        fn set_duplication(&mut self, probability: f64, lag: SimDuration) {
            self.set_duplication(probability, lag);
        }
    };
}

impl<A: Actor> PlanHost for Simulator<A> {
    impl_plan_host_body!();
}

impl<A: Actor> PlanHost for crate::tiled::CanonicalSim<A> {
    impl_plan_host_body!();
}

impl<A: Actor + Send> PlanHost for crate::tiled::TiledSim<A>
where
    A::Msg: Send,
{
    impl_plan_host_body!();
}

/// [`run_plan`] for any [`PlanHost`], without an observer: identical
/// crash/churn compilation, identical window segmentation (run to
/// `at − 1 µs`, apply, continue), identical final segment — so two
/// hosts fed the same plan see byte-identical schedules and identical
/// `run_until` split points.
pub fn run_plan_quiet<H: PlanHost>(host: &mut H, plan: &FaultPlan, deadline: SimTime) {
    let n = host.node_count();
    for (at, node) in plan.crash_schedule() {
        if node.index() < n && at <= deadline {
            host.schedule_crash(node, at);
        }
    }
    for (at, node, kind) in plan.churn_schedule() {
        if node.index() >= n || at > deadline {
            continue;
        }
        match kind {
            "join" => host.schedule_join(node, at),
            "leave" => host.schedule_leave(node, at),
            _ => host.schedule_rejoin(node, at),
        }
    }
    for (at, action) in plan.window_actions() {
        if at > deadline {
            break;
        }
        if at > host.now() && at > SimTime::ZERO {
            host.run_until(at - SimDuration::from_micros(1));
        }
        apply_action_on(host, &action, plan.baseline_p, n);
    }
    host.run_until(deadline);
}

fn apply_action_on<H: PlanHost>(host: &mut H, action: &Action, baseline_p: f64, n: usize) {
    match action {
        Action::Bernoulli { p, jitter } => {
            host.set_radio(RadioConfig::bernoulli(*p).with_jitter(*jitter));
        }
        Action::Burst { p_bad, p_gb, p_bg } => {
            host.set_radio(RadioConfig::new(Box::new(GilbertElliott::new(
                baseline_p, *p_bad, *p_gb, *p_bg,
            ))));
        }
        Action::RestoreRadio => host.set_radio(RadioConfig::bernoulli(baseline_p)),
        Action::PartitionOn(groups) => {
            if groups.len() == n {
                host.set_partition(groups.clone());
            }
        }
        Action::PartitionOff => host.clear_partition(),
        Action::LinkLagOn(a, b, lag) => {
            if a.index() < n && b.index() < n {
                host.set_link_lag(*a, *b, *lag);
            }
        }
        Action::LinkLagOff(a, b) => host.remove_link_lag(*a, *b),
        Action::ReplayOn(prob, lag) => host.set_duplication(*prob, *lag),
        Action::ReplayOff => host.set_duplication(0.0, SimDuration::ZERO),
    }
}

// ------------------------------------------------------------ codec

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

fn ids(nodes: &[NodeId]) -> String {
    nodes
        .iter()
        .map(|n| n.0.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn groups_text(groups: &[u32]) -> String {
    groups
        .iter()
        .map(|g| g.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

impl FaultPlan {
    /// Renders the plan as the replayable line-based artifact format.
    /// Plans without churn primitives emit the `cbfd-fault-plan v1`
    /// header unchanged; the presence of any join/leave/rejoin bumps
    /// it to `v2`. [`FaultPlan::from_text`] inverts both exactly.
    pub fn to_text(&self) -> String {
        let mut out = if self.has_churn() {
            String::from("cbfd-fault-plan v2\n")
        } else {
            String::from("cbfd-fault-plan v1\n")
        };
        out.push_str(&format!("baseline_p {}\n", self.baseline_p));
        out.push_str(&format!("horizon_us {}\n", self.horizon.as_micros()));
        for p in &self.primitives {
            let line = match p {
                FaultPrimitive::Crash { at, node } => {
                    format!("crash at_us={} node={}", at.as_micros(), node.0)
                }
                FaultPrimitive::Cascade {
                    start,
                    interval,
                    nodes,
                } => format!(
                    "cascade start_us={} interval_us={} nodes={}",
                    start.as_micros(),
                    interval.as_micros(),
                    ids(nodes)
                ),
                FaultPrimitive::LossStorm { from, until, p } => format!(
                    "loss_storm from_us={} until_us={} p={}",
                    from.as_micros(),
                    until.as_micros(),
                    p
                ),
                FaultPrimitive::BurstStorm {
                    from,
                    until,
                    p_bad,
                    p_gb,
                    p_bg,
                } => format!(
                    "burst_storm from_us={} until_us={} p_bad={} p_gb={} p_bg={}",
                    from.as_micros(),
                    until.as_micros(),
                    p_bad,
                    p_gb,
                    p_bg
                ),
                FaultPrimitive::Partition {
                    from,
                    until,
                    groups,
                } => format!(
                    "partition from_us={} until_us={} groups={}",
                    from.as_micros(),
                    until.as_micros(),
                    groups_text(groups)
                ),
                FaultPrimitive::DelayJitter {
                    from,
                    until,
                    jitter,
                } => format!(
                    "delay_jitter from_us={} until_us={} jitter_us={}",
                    from.as_micros(),
                    until.as_micros(),
                    jitter.as_micros()
                ),
                FaultPrimitive::LinkLag {
                    from,
                    until,
                    a,
                    b,
                    lag,
                } => format!(
                    "link_lag from_us={} until_us={} a={} b={} lag_us={}",
                    from.as_micros(),
                    until.as_micros(),
                    a.0,
                    b.0,
                    lag.as_micros()
                ),
                FaultPrimitive::Replay {
                    from,
                    until,
                    prob,
                    lag,
                } => format!(
                    "replay from_us={} until_us={} prob={} lag_us={}",
                    from.as_micros(),
                    until.as_micros(),
                    prob,
                    lag.as_micros()
                ),
                FaultPrimitive::Join { at, node } => {
                    format!("join at_us={} node={}", at.as_micros(), node.0)
                }
                FaultPrimitive::Leave { at, node } => {
                    format!("leave at_us={} node={}", at.as_micros(), node.0)
                }
                FaultPrimitive::Rejoin { at, node } => {
                    format!("rejoin at_us={} node={}", at.as_micros(), node.0)
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parses the artifact format produced by [`FaultPlan::to_text`].
    pub fn from_text(text: &str) -> Result<FaultPlan, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty plan")?;
        let version = match header.trim() {
            "cbfd-fault-plan v1" => 1,
            "cbfd-fault-plan v2" => 2,
            other => return Err(format!("unknown plan header: {other:?}")),
        };
        let mut plan = FaultPlan::empty(0.0, SimTime::ZERO);
        for line in lines {
            let mut parts = line.split_whitespace();
            let tag = parts.next().ok_or("blank primitive line")?;
            let mut fields = std::collections::BTreeMap::new();
            let mut positional = Vec::new();
            for part in parts {
                match part.split_once('=') {
                    Some((k, v)) => {
                        fields.insert(k.to_string(), v.to_string());
                    }
                    None => positional.push(part.to_string()),
                }
            }
            let f64_field = |k: &str| -> Result<f64, String> {
                fields
                    .get(k)
                    .ok_or_else(|| format!("{tag}: missing {k}"))?
                    .parse()
                    .map_err(|e| format!("{tag}: bad {k}: {e}"))
            };
            let u64_field = |k: &str| -> Result<u64, String> {
                fields
                    .get(k)
                    .ok_or_else(|| format!("{tag}: missing {k}"))?
                    .parse()
                    .map_err(|e| format!("{tag}: bad {k}: {e}"))
            };
            let list_field = |k: &str| -> Result<Vec<u32>, String> {
                fields
                    .get(k)
                    .ok_or_else(|| format!("{tag}: missing {k}"))?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("{tag}: bad {k}: {e}")))
                    .collect()
            };
            match tag {
                "baseline_p" => {
                    plan.baseline_p = positional
                        .first()
                        .ok_or("baseline_p: missing value")?
                        .parse()
                        .map_err(|e| format!("baseline_p: {e}"))?;
                }
                "horizon_us" => {
                    plan.horizon = SimTime::from_micros(
                        positional
                            .first()
                            .ok_or("horizon_us: missing value")?
                            .parse()
                            .map_err(|e| format!("horizon_us: {e}"))?,
                    );
                }
                "crash" => plan.primitives.push(FaultPrimitive::Crash {
                    at: SimTime::from_micros(u64_field("at_us")?),
                    node: NodeId(u64_field("node")? as u32),
                }),
                "cascade" => plan.primitives.push(FaultPrimitive::Cascade {
                    start: SimTime::from_micros(u64_field("start_us")?),
                    interval: SimDuration::from_micros(u64_field("interval_us")?),
                    nodes: list_field("nodes")?.into_iter().map(NodeId).collect(),
                }),
                "loss_storm" => plan.primitives.push(FaultPrimitive::LossStorm {
                    from: SimTime::from_micros(u64_field("from_us")?),
                    until: SimTime::from_micros(u64_field("until_us")?),
                    p: f64_field("p")?,
                }),
                "burst_storm" => plan.primitives.push(FaultPrimitive::BurstStorm {
                    from: SimTime::from_micros(u64_field("from_us")?),
                    until: SimTime::from_micros(u64_field("until_us")?),
                    p_bad: f64_field("p_bad")?,
                    p_gb: f64_field("p_gb")?,
                    p_bg: f64_field("p_bg")?,
                }),
                "partition" => plan.primitives.push(FaultPrimitive::Partition {
                    from: SimTime::from_micros(u64_field("from_us")?),
                    until: SimTime::from_micros(u64_field("until_us")?),
                    groups: list_field("groups")?,
                }),
                "delay_jitter" => plan.primitives.push(FaultPrimitive::DelayJitter {
                    from: SimTime::from_micros(u64_field("from_us")?),
                    until: SimTime::from_micros(u64_field("until_us")?),
                    jitter: SimDuration::from_micros(u64_field("jitter_us")?),
                }),
                "link_lag" => plan.primitives.push(FaultPrimitive::LinkLag {
                    from: SimTime::from_micros(u64_field("from_us")?),
                    until: SimTime::from_micros(u64_field("until_us")?),
                    a: NodeId(u64_field("a")? as u32),
                    b: NodeId(u64_field("b")? as u32),
                    lag: SimDuration::from_micros(u64_field("lag_us")?),
                }),
                "replay" => plan.primitives.push(FaultPrimitive::Replay {
                    from: SimTime::from_micros(u64_field("from_us")?),
                    until: SimTime::from_micros(u64_field("until_us")?),
                    prob: f64_field("prob")?,
                    lag: SimDuration::from_micros(u64_field("lag_us")?),
                }),
                "join" | "leave" | "rejoin" if version >= 2 => {
                    let at = SimTime::from_micros(u64_field("at_us")?);
                    let node = NodeId(u64_field("node")? as u32);
                    plan.primitives.push(match tag {
                        "join" => FaultPrimitive::Join { at, node },
                        "leave" => FaultPrimitive::Leave { at, node },
                        _ => FaultPrimitive::Rejoin { at, node },
                    });
                }
                other => return Err(format!("unknown primitive: {other}")),
            }
        }
        Ok(plan)
    }
}

// ---------------------------------------------------------- shrinker

/// Outcome of [`shrink`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkResult {
    /// The minimal plan found.
    pub plan: FaultPlan,
    /// Candidate plans tested against the oracle.
    pub tests_run: u32,
}

/// Reduces `plan` to a (locally) minimal schedule that still satisfies
/// `still_fails`, by greedy chunk removal to a fixpoint followed by
/// per-primitive weakening (shorter windows, milder probabilities,
/// shorter cascades). Fully deterministic: the same plan and oracle
/// always shrink to the same result. `still_fails(plan)` is assumed
/// true on entry; at most `max_tests` oracle invocations are spent.
pub fn shrink(
    plan: &FaultPlan,
    mut still_fails: impl FnMut(&FaultPlan) -> bool,
    max_tests: u32,
) -> ShrinkResult {
    let mut current = plan.clone();
    let mut tests_run = 0u32;
    let mut test = |candidate: &FaultPlan, tests_run: &mut u32| -> bool {
        if *tests_run >= max_tests {
            return false;
        }
        *tests_run += 1;
        still_fails(candidate)
    };

    // Pass 1: chunk removal (ddmin-style), halving the chunk size.
    let mut chunk = current.primitives.len().max(1).div_ceil(2);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.primitives.len() {
            let end = (i + chunk).min(current.primitives.len());
            let mut candidate = current.clone();
            candidate.primitives.drain(i..end);
            if test(&candidate, &mut tests_run) {
                current = candidate;
                removed_any = true;
                // Re-test the same index: the next chunk slid into it.
            } else {
                i = end;
            }
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }

    // Pass 2: weaken each surviving primitive to a fixpoint.
    loop {
        let mut weakened_any = false;
        for i in 0..current.primitives.len() {
            loop {
                let variants = weaken(&current.primitives[i], current.baseline_p, current.horizon);
                let mut accepted = false;
                for v in variants {
                    let mut candidate = current.clone();
                    candidate.primitives[i] = v;
                    if test(&candidate, &mut tests_run) {
                        current = candidate;
                        accepted = true;
                        weakened_any = true;
                        break;
                    }
                }
                if !accepted {
                    break;
                }
            }
        }
        if !weakened_any || tests_run >= max_tests {
            break;
        }
    }

    ShrinkResult {
        plan: current,
        tests_run,
    }
}

/// Halves a window, returning `None` when it cannot get shorter.
fn halve_window(from: SimTime, until: SimTime) -> Option<SimTime> {
    let len = until.since(from).as_micros();
    (len >= 2).then(|| from + SimDuration::from_micros(len / 2))
}

/// Strictly-weaker variants of `p`, strongest reduction first.
fn weaken(p: &FaultPrimitive, baseline_p: f64, horizon: SimTime) -> Vec<FaultPrimitive> {
    let mut out = Vec::new();
    match p {
        FaultPrimitive::Crash { .. } => {}
        // Churn point faults weaken by shrinking the window in which
        // the membership is perturbed: joins and leaves move toward the
        // horizon (less time present/absent), rejoins move toward zero
        // (shorter dead window). Each step halves the remaining
        // distance, so weakening terminates.
        FaultPrimitive::Join { at, node } | FaultPrimitive::Leave { at, node } => {
            let gap = horizon.as_micros().saturating_sub(at.as_micros());
            // Half-gap jump first, quarter-gap as the gentler fallback
            // when the big jump overshoots whatever the oracle needs.
            for step in [gap / 2, gap / 4] {
                if step >= 1 {
                    let shifted = *at + SimDuration::from_micros(step);
                    out.push(match p {
                        FaultPrimitive::Join { .. } => FaultPrimitive::Join {
                            at: shifted,
                            node: *node,
                        },
                        _ => FaultPrimitive::Leave {
                            at: shifted,
                            node: *node,
                        },
                    });
                }
            }
        }
        FaultPrimitive::Rejoin { at, node } => {
            let offset = at.as_micros();
            for step in [offset / 2, offset / 4] {
                if step >= 1 {
                    out.push(FaultPrimitive::Rejoin {
                        at: SimTime::from_micros(offset - step),
                        node: *node,
                    });
                }
            }
        }
        FaultPrimitive::Cascade {
            start,
            interval,
            nodes,
        } => {
            if nodes.len() > 1 {
                out.push(FaultPrimitive::Cascade {
                    start: *start,
                    interval: *interval,
                    nodes: nodes[..nodes.len() / 2].to_vec(),
                });
                out.push(FaultPrimitive::Cascade {
                    start: *start,
                    interval: *interval,
                    nodes: nodes[..nodes.len() - 1].to_vec(),
                });
            }
        }
        FaultPrimitive::LossStorm { from, until, p } => {
            if let Some(mid) = halve_window(*from, *until) {
                out.push(FaultPrimitive::LossStorm {
                    from: *from,
                    until: mid,
                    p: *p,
                });
            }
            let milder = (p + baseline_p) / 2.0;
            if *p - milder > 0.01 {
                out.push(FaultPrimitive::LossStorm {
                    from: *from,
                    until: *until,
                    p: milder,
                });
            }
        }
        FaultPrimitive::BurstStorm {
            from,
            until,
            p_bad,
            p_gb,
            p_bg,
        } => {
            if let Some(mid) = halve_window(*from, *until) {
                out.push(FaultPrimitive::BurstStorm {
                    from: *from,
                    until: mid,
                    p_bad: *p_bad,
                    p_gb: *p_gb,
                    p_bg: *p_bg,
                });
            }
            if *p_gb > 0.02 {
                out.push(FaultPrimitive::BurstStorm {
                    from: *from,
                    until: *until,
                    p_bad: *p_bad,
                    p_gb: p_gb / 2.0,
                    p_bg: *p_bg,
                });
            }
        }
        FaultPrimitive::Partition {
            from,
            until,
            groups,
        } => {
            if let Some(mid) = halve_window(*from, *until) {
                out.push(FaultPrimitive::Partition {
                    from: *from,
                    until: mid,
                    groups: groups.clone(),
                });
            }
        }
        FaultPrimitive::DelayJitter {
            from,
            until,
            jitter,
        } => {
            if let Some(mid) = halve_window(*from, *until) {
                out.push(FaultPrimitive::DelayJitter {
                    from: *from,
                    until: mid,
                    jitter: *jitter,
                });
            }
            if jitter.as_micros() >= 2 {
                out.push(FaultPrimitive::DelayJitter {
                    from: *from,
                    until: *until,
                    jitter: SimDuration::from_micros(jitter.as_micros() / 2),
                });
            }
        }
        FaultPrimitive::LinkLag {
            from,
            until,
            a,
            b,
            lag,
        } => {
            if let Some(mid) = halve_window(*from, *until) {
                out.push(FaultPrimitive::LinkLag {
                    from: *from,
                    until: mid,
                    a: *a,
                    b: *b,
                    lag: *lag,
                });
            }
            if lag.as_micros() >= 2 {
                out.push(FaultPrimitive::LinkLag {
                    from: *from,
                    until: *until,
                    a: *a,
                    b: *b,
                    lag: SimDuration::from_micros(lag.as_micros() / 2),
                });
            }
        }
        FaultPrimitive::Replay {
            from,
            until,
            prob,
            lag,
        } => {
            if let Some(mid) = halve_window(*from, *until) {
                out.push(FaultPrimitive::Replay {
                    from: *from,
                    until: mid,
                    prob: *prob,
                    lag: *lag,
                });
            }
            if *prob > 0.02 {
                out.push(FaultPrimitive::Replay {
                    from: *from,
                    until: *until,
                    prob: prob / 2.0,
                    lag: *lag,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::topology::Topology;

    fn cfg(nodes: usize) -> PlanConfig {
        PlanConfig {
            nodes,
            ..PlanConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = FaultPlan::generate(42, &cfg(50));
        let b = FaultPlan::generate(42, &cfg(50));
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, &cfg(50));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn text_round_trips_every_primitive_kind() {
        // Force all 8 kinds by sampling until each appeared.
        let mut seen = std::collections::BTreeSet::new();
        let mut plans = Vec::new();
        for seed in 0..200u64 {
            let plan = FaultPlan::generate(seed, &cfg(16));
            for p in &plan.primitives {
                seen.insert(p.to_text_tag());
            }
            plans.push(plan);
            if seen.len() == 8 {
                break;
            }
        }
        assert_eq!(seen.len(), 8, "generator must emit every kind");
        for plan in &plans {
            let text = plan.to_text();
            let parsed = FaultPlan::from_text(&text).expect("parse");
            assert_eq!(*plan, parsed, "round trip:\n{text}");
        }
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(FaultPlan::from_text("").is_err());
        assert!(FaultPlan::from_text("nonsense v9").is_err());
        assert!(FaultPlan::from_text("cbfd-fault-plan v1\nwobble x=1").is_err());
        assert!(FaultPlan::from_text("cbfd-fault-plan v1\ncrash at_us=5").is_err());
        // Churn tags belong to the v2 format only.
        assert!(FaultPlan::from_text("cbfd-fault-plan v1\nleave at_us=5 node=1").is_err());
        assert!(FaultPlan::from_text("cbfd-fault-plan v2\nleave at_us=5 node=1").is_ok());
    }

    #[test]
    fn churn_generation_covers_all_kinds_and_round_trips() {
        let config = PlanConfig {
            churn: true,
            ..cfg(16)
        };
        let mut seen = std::collections::BTreeSet::new();
        let mut plans = Vec::new();
        for seed in 0..400u64 {
            let plan = FaultPlan::generate(seed, &config);
            for p in &plan.primitives {
                seen.insert(p.to_text_tag());
            }
            plans.push(plan);
            if seen.len() == 11 {
                break;
            }
        }
        assert_eq!(seen.len(), 11, "churn generator must emit every kind");
        for plan in &plans {
            let text = plan.to_text();
            if plan.has_churn() {
                assert!(text.starts_with("cbfd-fault-plan v2\n"), "{text}");
            } else {
                assert!(text.starts_with("cbfd-fault-plan v1\n"), "{text}");
            }
            let parsed = FaultPlan::from_text(&text).expect("parse");
            assert_eq!(*plan, parsed, "round trip:\n{text}");
        }
    }

    #[test]
    fn churn_off_generation_is_unchanged() {
        // The churn flag must not perturb the v1 sampling stream:
        // pinned-seed artifacts stay byte-identical.
        for seed in 0..50u64 {
            let v1 = FaultPlan::generate(seed, &cfg(30));
            assert!(!v1.has_churn());
            assert!(v1.to_text().starts_with("cbfd-fault-plan v1\n"));
        }
    }

    #[test]
    fn churn_schedule_and_join_targets() {
        let plan = FaultPlan {
            baseline_p: 0.0,
            horizon: SimTime::from_millis(100),
            primitives: vec![
                FaultPrimitive::Rejoin {
                    at: SimTime::from_millis(50),
                    node: NodeId(1),
                },
                FaultPrimitive::Join {
                    at: SimTime::from_millis(20),
                    node: NodeId(7),
                },
                FaultPrimitive::Leave {
                    at: SimTime::from_millis(10),
                    node: NodeId(1),
                },
                FaultPrimitive::Join {
                    at: SimTime::from_millis(30),
                    node: NodeId(7),
                },
            ],
        };
        assert_eq!(
            plan.churn_schedule(),
            vec![
                (SimTime::from_millis(10), NodeId(1), "leave"),
                (SimTime::from_millis(20), NodeId(7), "join"),
                (SimTime::from_millis(30), NodeId(7), "join"),
                (SimTime::from_millis(50), NodeId(1), "rejoin"),
            ]
        );
        assert_eq!(plan.join_targets(), vec![NodeId(7)]);
    }

    #[test]
    fn run_plan_applies_churn_without_panicking() {
        // Leave then rejoin one chatter; join a dormant one. Garbage
        // targets are skipped.
        let plan = FaultPlan {
            baseline_p: 0.0,
            horizon: SimTime::from_millis(50),
            primitives: vec![
                FaultPrimitive::Leave {
                    at: SimTime::from_millis(5),
                    node: NodeId(1),
                },
                FaultPrimitive::Rejoin {
                    at: SimTime::from_millis(20),
                    node: NodeId(1),
                },
                FaultPrimitive::Join {
                    at: SimTime::from_millis(1),
                    node: NodeId(999),
                },
                FaultPrimitive::Rejoin {
                    at: SimTime::from_millis(2),
                    node: NodeId(0),
                },
            ],
        };
        let mut sim = Simulator::new(pair(), RadioConfig::bernoulli(0.0), 1, |_| Chatter {
            pings: 2,
            ..Chatter::default()
        });
        let mut seen = Vec::new();
        run_plan(
            &mut sim,
            &plan,
            SimTime::from_millis(50),
            &mut |_, ev| match ev {
                SimEvent::Leave { node, .. } => seen.push(("leave", node)),
                SimEvent::Rejoin { node, .. } => seen.push(("rejoin", node)),
                SimEvent::Join { node, .. } => seen.push(("join", node)),
                _ => {}
            },
        );
        assert_eq!(
            seen,
            vec![("leave", NodeId(1)), ("rejoin", NodeId(1))],
            "only the sensible transitions fire"
        );
        assert!(sim.is_alive(NodeId(1)));
    }

    #[test]
    fn shrink_weakens_churn_primitives() {
        // Oracle: fails iff node 1 is absent (left, not yet rejoined)
        // at t = 40ms.
        let absent_at_40 = |p: &FaultPlan| {
            let t = SimTime::from_millis(40);
            let mut absent = false;
            for (at, node, kind) in p.churn_schedule() {
                if at <= t && node == NodeId(1) {
                    match kind {
                        "leave" => absent = true,
                        "rejoin" => absent = false,
                        _ => {}
                    }
                }
            }
            absent
        };
        let plan = FaultPlan {
            baseline_p: 0.0,
            horizon: SimTime::from_millis(100),
            primitives: vec![
                FaultPrimitive::Leave {
                    at: SimTime::from_millis(1),
                    node: NodeId(1),
                },
                FaultPrimitive::Join {
                    at: SimTime::from_millis(2),
                    node: NodeId(3),
                },
            ],
        };
        assert!(absent_at_40(&plan));
        let result = shrink(&plan, absent_at_40, 10_000);
        assert!(absent_at_40(&result.plan));
        assert_eq!(result.plan.primitives.len(), 1, "join was irrelevant");
        match &result.plan.primitives[0] {
            FaultPrimitive::Leave { at, node } => {
                assert_eq!(*node, NodeId(1));
                assert!(
                    *at > SimTime::from_millis(1),
                    "leave should weaken toward the horizon: {}",
                    result.plan.to_text()
                );
                assert!(*at <= SimTime::from_millis(40));
            }
            other => panic!("unexpected primitive {other:?}"),
        }
        assert_eq!(shrink(&plan, absent_at_40, 10_000), result);
    }

    #[test]
    fn crash_schedule_expands_cascades_in_order() {
        let plan = FaultPlan {
            baseline_p: 0.0,
            horizon: SimTime::from_millis(100),
            primitives: vec![
                FaultPrimitive::Crash {
                    at: SimTime::from_millis(50),
                    node: NodeId(9),
                },
                FaultPrimitive::Cascade {
                    start: SimTime::from_millis(10),
                    interval: SimDuration::from_millis(30),
                    nodes: vec![NodeId(1), NodeId(2)],
                },
            ],
        };
        assert_eq!(
            plan.crash_schedule(),
            vec![
                (SimTime::from_millis(10), NodeId(1)),
                (SimTime::from_millis(40), NodeId(2)),
                (SimTime::from_millis(50), NodeId(9)),
            ]
        );
    }

    /// Counting actor used by the driver tests.
    #[derive(Default)]
    struct Chatter {
        heard: usize,
        pings: u32,
    }
    impl Actor for Chatter {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut crate::actor::Ctx<'_, u32>) {
            for i in 0..self.pings {
                ctx.broadcast(i);
            }
        }
        fn on_message(&mut self, _: &mut crate::actor::Ctx<'_, u32>, _: NodeId, _: &u32) {
            self.heard += 1;
        }
    }

    fn pair() -> Topology {
        Topology::from_positions(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)], 100.0)
    }

    #[test]
    fn run_plan_applies_crashes_and_storms() {
        // Total-loss storm over the whole run: nothing arrives, and the
        // scheduled crash fires.
        let plan = FaultPlan {
            baseline_p: 0.0,
            horizon: SimTime::from_millis(50),
            primitives: vec![
                FaultPrimitive::LossStorm {
                    from: SimTime::ZERO,
                    until: SimTime::from_millis(50),
                    p: 1.0,
                },
                FaultPrimitive::Crash {
                    at: SimTime::from_millis(5),
                    node: NodeId(1),
                },
            ],
        };
        let mut sim = Simulator::new(pair(), RadioConfig::bernoulli(0.0), 1, |_| Chatter {
            pings: 3,
            ..Chatter::default()
        });
        let mut crashes = 0;
        run_plan(&mut sim, &plan, SimTime::from_millis(50), &mut |_, ev| {
            if matches!(ev, SimEvent::Crash { .. }) {
                crashes += 1;
            }
        });
        assert_eq!(crashes, 1);
        assert!(!sim.is_alive(NodeId(1)));
        // The storm started at t=0, i.e. before the on-start pings.
        assert_eq!(sim.metrics().deliveries, 0);
        assert_eq!(sim.metrics().losses, 6);
    }

    #[test]
    fn run_plan_skips_out_of_range_nodes() {
        let plan = FaultPlan {
            baseline_p: 0.0,
            horizon: SimTime::from_millis(10),
            primitives: vec![
                FaultPrimitive::Crash {
                    at: SimTime::from_millis(1),
                    node: NodeId(999),
                },
                FaultPrimitive::LinkLag {
                    from: SimTime::ZERO,
                    until: SimTime::from_millis(10),
                    a: NodeId(998),
                    b: NodeId(999),
                    lag: SimDuration::from_millis(1),
                },
            ],
        };
        let mut sim = Simulator::new(pair(), RadioConfig::bernoulli(0.0), 1, |_| Chatter {
            pings: 1,
            ..Chatter::default()
        });
        run_plan(&mut sim, &plan, SimTime::from_millis(10), &mut |_, _| {});
        assert_eq!(sim.metrics().deliveries, 2, "run must complete unharmed");
    }

    #[test]
    fn run_plan_is_deterministic() {
        let config = cfg(2);
        let run = |seed: u64| {
            let plan = FaultPlan::generate(seed, &config);
            let mut sim =
                Simulator::new(pair(), RadioConfig::bernoulli(config.baseline_p), 7, |_| {
                    Chatter {
                        pings: 20,
                        ..Chatter::default()
                    }
                });
            sim.enable_trace();
            let mut events = Vec::new();
            run_plan(&mut sim, &plan, config.horizon, &mut |s, ev| {
                events.push((s.now(), ev));
            });
            (
                plan.to_text(),
                events,
                sim.metrics().clone(),
                sim.trace().records().to_vec(),
            )
        };
        for seed in 0..6 {
            assert_eq!(run(seed), run(seed), "seed {seed}");
        }
    }

    #[test]
    fn shrink_removes_irrelevant_primitives() {
        // Oracle: "fails" iff the plan crashes node 3 at any point.
        let config = PlanConfig {
            nodes: 8,
            max_primitives: 10,
            ..PlanConfig::default()
        };
        let fails = |p: &FaultPlan| p.crash_schedule().iter().any(|&(_, n)| n == NodeId(3));
        // Find a seed whose plan fails with more than one primitive.
        let plan = (0..500u64)
            .map(|s| FaultPlan::generate(s, &config))
            .find(|p| fails(p) && p.primitives.len() > 1)
            .expect("some generated plan crashes node 3");
        let result = shrink(&plan, fails, 10_000);
        assert!(fails(&result.plan), "shrunk plan must still fail");
        assert_eq!(
            result.plan.primitives.len(),
            1,
            "only the crashing primitive survives: {}",
            result.plan.to_text()
        );
        // Deterministic: shrinking again yields the identical plan.
        assert_eq!(shrink(&plan, fails, 10_000), result);
    }

    #[test]
    fn shrink_weakens_surviving_primitives() {
        // Oracle: fails iff a loss storm with p >= 0.3 covers t=10ms.
        let covers = |p: &FaultPlan| {
            p.primitives.iter().any(|pr| {
                matches!(pr, FaultPrimitive::LossStorm { from, until, p }
                    if *from <= SimTime::from_millis(10)
                        && *until > SimTime::from_millis(10)
                        && *p >= 0.3)
            })
        };
        let plan = FaultPlan {
            baseline_p: 0.05,
            horizon: SimTime::from_millis(100),
            primitives: vec![FaultPrimitive::LossStorm {
                from: SimTime::ZERO,
                until: SimTime::from_millis(100),
                p: 0.9,
            }],
        };
        let result = shrink(&plan, covers, 10_000);
        match &result.plan.primitives[0] {
            FaultPrimitive::LossStorm { until, p, .. } => {
                assert!(
                    *until < SimTime::from_millis(100),
                    "window should have shrunk: {}",
                    result.plan.to_text()
                );
                assert!(*p < 0.9, "p should have weakened");
                assert!(*p >= 0.3);
            }
            other => panic!("unexpected primitive {other:?}"),
        }
    }
}
