//! Radio configuration: channel loss and delivery delay.
//!
//! The paper assumes that "in most cases the delay of message delivery
//! within the transmission range is smaller than a reasonable time
//! `Thop`" (Section 2.2). [`RadioConfig`] bundles a [`LossModel`] with
//! a bounded delivery-delay model: a fixed propagation/processing
//! delay plus optional uniform jitter, whose sum should be kept below
//! the protocol's `Thop` round timeout.

use crate::loss::{Bernoulli, LossModel, Perfect};
use crate::time::SimDuration;
use rand::{Rng, RngExt};
use std::fmt;

/// Channel configuration handed to the [`Simulator`](crate::sim::Simulator).
///
/// # Examples
///
/// ```
/// use cbfd_net::radio::RadioConfig;
/// use cbfd_net::time::SimDuration;
///
/// let radio = RadioConfig::bernoulli(0.1)
///     .with_delay(SimDuration::from_millis(1))
///     .with_jitter(SimDuration::from_micros(200));
/// assert_eq!(radio.delay(), SimDuration::from_millis(1));
/// ```
pub struct RadioConfig {
    loss: Box<dyn LossModel>,
    delay: SimDuration,
    jitter: SimDuration,
}

impl RadioConfig {
    /// Default fixed delivery delay (1 ms), comfortably below the
    /// default `Thop` of the FDS.
    pub const DEFAULT_DELAY: SimDuration = SimDuration::from_millis(1);

    /// Creates a configuration with a custom loss model, the default
    /// delay, and no jitter.
    pub fn new(loss: Box<dyn LossModel>) -> Self {
        RadioConfig {
            loss,
            delay: Self::DEFAULT_DELAY,
            jitter: SimDuration::ZERO,
        }
    }

    /// A perfectly reliable channel.
    pub fn lossless() -> Self {
        RadioConfig::new(Box::new(Perfect))
    }

    /// The paper's channel: i.i.d. per-receiver loss with probability
    /// `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn bernoulli(p: f64) -> Self {
        RadioConfig::new(Box::new(Bernoulli::new(p)))
    }

    /// Sets the fixed delivery delay.
    pub fn with_delay(mut self, delay: SimDuration) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the maximum uniform jitter added to every delivery.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// The fixed component of the delivery delay.
    #[inline]
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// The maximum jitter added on top of the fixed delay.
    #[inline]
    pub fn jitter(&self) -> SimDuration {
        self.jitter
    }

    /// Worst-case delivery delay (`delay + jitter`); protocol round
    /// timeouts (`Thop`) must be at least this long for the paper's
    /// timing assumptions to hold.
    #[inline]
    pub fn max_delay(&self) -> SimDuration {
        self.delay + self.jitter
    }

    /// Draws a delivery delay for one (transmission, receiver) pair.
    pub(crate) fn draw_delay<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        if self.jitter.is_zero() {
            self.delay
        } else {
            self.delay + SimDuration::from_micros(rng.random_range(0..=self.jitter.as_micros()))
        }
    }

    /// Mutable access to the loss model (used by the simulator on each
    /// transmission).
    pub(crate) fn loss_mut(&mut self) -> &mut dyn LossModel {
        self.loss.as_mut()
    }

    /// Shared access to the loss model (used by the checkpoint writer
    /// to snapshot the channel state).
    pub(crate) fn loss(&self) -> &dyn LossModel {
        self.loss.as_ref()
    }
}

impl fmt::Debug for RadioConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RadioConfig")
            .field("loss", &self.loss)
            .field("delay", &self.delay)
            .field("jitter", &self.jitter)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_delay_no_jitter() {
        let r = RadioConfig::lossless();
        assert_eq!(r.delay(), RadioConfig::DEFAULT_DELAY);
        assert!(r.jitter().is_zero());
        assert_eq!(r.max_delay(), RadioConfig::DEFAULT_DELAY);
    }

    #[test]
    fn builder_sets_fields() {
        let r = RadioConfig::bernoulli(0.2)
            .with_delay(SimDuration::from_millis(2))
            .with_jitter(SimDuration::from_millis(1));
        assert_eq!(r.delay(), SimDuration::from_millis(2));
        assert_eq!(r.jitter(), SimDuration::from_millis(1));
        assert_eq!(r.max_delay(), SimDuration::from_millis(3));
    }

    #[test]
    fn draw_delay_without_jitter_is_fixed() {
        let r = RadioConfig::lossless().with_delay(SimDuration::from_micros(123));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(r.draw_delay(&mut rng), SimDuration::from_micros(123));
        }
    }

    #[test]
    fn draw_delay_with_jitter_is_bounded() {
        let r = RadioConfig::lossless()
            .with_delay(SimDuration::from_micros(100))
            .with_jitter(SimDuration::from_micros(50));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let d = r.draw_delay(&mut rng);
            assert!(d >= SimDuration::from_micros(100));
            assert!(d <= SimDuration::from_micros(150));
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", RadioConfig::bernoulli(0.1));
        assert!(s.contains("RadioConfig"));
        assert!(s.contains("Bernoulli"));
    }
}
