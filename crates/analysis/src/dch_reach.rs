//! DCH reachability — the model-based analysis the paper *describes*
//! but omits "due to space limitations" (Section 4.2, Figure 2(a)).
//!
//! After a deputy at distance `d` from the failed clusterhead takes
//! over, members in the crescent `Av` are outside the deputy's range.
//! The digest round still lets the deputy learn such a member `v` is
//! alive, through any relay `v'` in the region `Ag` covered by both
//! `v` and the deputy: the relay must overhear `v`'s heartbeat
//! (`1−p`) and its digest must reach the deputy (`1−p`).
//!
//! The paper's summarized finding — "unless the node population
//! density is low and the DCH's distance from the original CH is big,
//! with high probability a DCH will be able to hear from an
//! out-of-range cluster member" — is reproduced by
//! [`miss_probability`], and validated geometrically by the Monte
//! Carlo estimator in [`montecarlo`](crate::montecarlo).

use crate::geometry::ag_fraction;

/// Probability that the deputy obtains **no** evidence of an
/// out-of-range member `v` through the digest round.
///
/// `n` is the cluster population, `p` the loss probability, `d_dch`
/// the deputy's normalized distance from the old centre, and `d_v`
/// the member's normalized distance (the worst case is `d_v = 1`,
/// i.e. on the circumference opposite the deputy).
///
/// Each of the other `N−3` members lies in the relay region with
/// probability `Ag/Au` and relays successfully with probability
/// `(1−p)²`, so
///
/// ```text
/// P(miss) = (1 − (Ag/Au)(1−p)²)^{N−3}.
/// ```
///
/// ```
/// # use cbfd_analysis::dch_reach::miss_probability;
/// // Dense cluster, deputy near the centre: reachability is certain.
/// assert!(miss_probability(100, 0.1, 0.2, 1.0) < 1e-10);
/// ```
pub fn miss_probability(n: u64, p: f64, d_dch: f64, d_v: f64) -> f64 {
    assert!(n >= 3, "needs the CH, the DCH, and the member");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let relay_region = ag_fraction(d_dch, d_v);
    let per_member_relay = relay_region * (1.0 - p) * (1.0 - p);
    (1.0 - per_member_relay).powi((n - 3) as i32)
}

/// Convenience: worst-case member (`d_v = 1`).
pub fn worst_case_miss(n: u64, p: f64, d_dch: f64) -> f64 {
    miss_probability(n, p, d_dch, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_clusters_reach_everyone() {
        // The paper's claim: high probability of reachability unless
        // density is low AND the displacement is big.
        assert!(worst_case_miss(100, 0.2, 0.3) < 1e-6);
        assert!(worst_case_miss(75, 0.2, 0.3) < 1e-4);
    }

    #[test]
    fn sparse_and_displaced_is_the_bad_corner() {
        let bad = worst_case_miss(50, 0.5, 0.9);
        let good = worst_case_miss(100, 0.05, 0.1);
        assert!(bad > 1e-3, "sparse+displaced should be risky: {bad}");
        assert!(good < 1e-10);
    }

    #[test]
    fn miss_grows_with_displacement() {
        let mut prev = 0.0;
        for i in 0..=9 {
            let d = i as f64 / 10.0;
            let v = worst_case_miss(75, 0.2, d);
            assert!(v >= prev, "displacement {d}");
            prev = v;
        }
    }

    #[test]
    fn miss_grows_with_loss() {
        let mut prev = 0.0;
        for i in 1..=10 {
            let p = i as f64 * 0.05;
            let v = worst_case_miss(75, p, 0.5);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn fully_separated_regions_never_relay() {
        // d_dch = 1 and d_v = 1 on opposite sides: Ag = 0, miss is
        // certain regardless of density.
        assert_eq!(worst_case_miss(100, 0.05, 1.0), 1.0);
    }

    #[test]
    fn colocated_deputy_reaches_directly_modelled_region() {
        // d_dch = 0 reduces to the member's own An lens relaying.
        let v = miss_probability(100, 0.1, 0.0, 0.5);
        assert!(v < 1e-20);
    }
}
