//! Across-cluster forwarding reliability (Section 4.3) — experiment
//! E5 of `DESIGN.md`.
//!
//! The paper's mechanism gives one failure report `1 + n` candidate
//! forwarders between two neighbouring clusters (the primary gateway
//! plus `n` ranked backup gateways) and two layers of implicit
//! acknowledgment:
//!
//! * the sending clusterhead retransmits its update if it does not
//!   overhear a forward within `2·Thop`;
//! * each forwarder re-forwards if it does not hear the receiving
//!   clusterhead's re-broadcast within `(n+1)·2·Thop`.
//!
//! [`failure_probability`] models one *cycle* of the scheme: the
//! update broadcast reaches each forwarder independently (`1−p`), and
//! each forwarder holding the update gets `attempts` transmissions
//! toward the receiving head, each succeeding with probability `1−p`.
//! With `r` head-retransmission rounds the cycles repeat with fresh
//! randomness, so the overall failure probability is the single-cycle
//! value raised to `r + 1`. The protocol-level simulation in the
//! bench harness validates the model.

/// Probability that one forwarding cycle fails to deliver the report:
/// every forwarder either missed the update or lost all its
/// `attempts` transmissions.
///
/// ```
/// # use cbfd_analysis::intercluster::cycle_failure;
/// // A single gateway with one attempt fails iff it misses the update
/// // or its one forward is lost: 1 − (1−p)².
/// let p = 0.3;
/// assert!((cycle_failure(p, 0, 1) - (1.0 - 0.7 * 0.7)).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `attempts` is zero or `p` is out of range.
pub fn cycle_failure(p: f64, backups: u32, attempts: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(attempts > 0, "each forwarder needs at least one attempt");
    let deliver_given_received = 1.0 - p.powi(attempts as i32);
    let per_forwarder_failure = 1.0 - (1.0 - p) * deliver_given_received;
    per_forwarder_failure.powi(backups as i32 + 1)
}

/// Probability that a report never crosses the link despite `retx`
/// clusterhead retransmission rounds (each round is an independent
/// cycle).
pub fn failure_probability(p: f64, backups: u32, attempts: u32, retx: u32) -> f64 {
    cycle_failure(p, backups, attempts).powi(retx as i32 + 1)
}

/// Expected number of report transmissions spent in one cycle (cost
/// side of the trade-off): each of the `1 + n` forwarders transmits
/// only if it received the update, and stops after its first success.
pub fn expected_report_transmissions(p: f64, backups: u32, attempts: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(attempts > 0, "each forwarder needs at least one attempt");
    // A forwarder that received the update transmits T times where T
    // is min(geometric(1-p), attempts):
    // E[T] = Σ_{t=1..attempts} p^{t-1}.
    let e_tries: f64 = (0..attempts).map(|t| p.powi(t as i32)).sum();
    (1.0 - p) * e_tries * (f64::from(backups) + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backups_improve_reliability() {
        let p = 0.3;
        let mut prev = 1.0;
        for n in 0..5 {
            let f = cycle_failure(p, n, 1);
            assert!(f < prev, "{n} backups");
            prev = f;
        }
    }

    #[test]
    fn attempts_improve_reliability() {
        let p = 0.3;
        assert!(cycle_failure(p, 1, 2) < cycle_failure(p, 1, 1));
        assert!(cycle_failure(p, 1, 3) < cycle_failure(p, 1, 2));
    }

    #[test]
    fn retransmission_rounds_compound() {
        let p = 0.4;
        let single = cycle_failure(p, 2, 1);
        assert!((failure_probability(p, 2, 1, 1) - single * single).abs() < 1e-12);
        assert!((failure_probability(p, 2, 1, 0) - single).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_reliability() {
        // With 3 backups, 2 attempts, and 2 retransmission rounds at
        // p = 0.5 a report still crosses with overwhelming
        // probability.
        let f = failure_probability(0.5, 3, 2, 2);
        assert!(f < 5e-3, "{f}");
        // At the benign end the failure probability is negligible.
        assert!(failure_probability(0.05, 3, 2, 2) < 1e-12);
    }

    #[test]
    fn cost_grows_mildly_with_backups() {
        let p = 0.2;
        let one = expected_report_transmissions(p, 0, 2);
        let four = expected_report_transmissions(p, 3, 2);
        assert!(four > one);
        assert!(four < 4.0 * one + 1e-12, "linear in forwarders at most");
    }

    #[test]
    fn extremes() {
        assert_eq!(cycle_failure(0.0, 0, 1), 0.0);
        assert_eq!(cycle_failure(1.0, 5, 3), 1.0);
        assert_eq!(expected_report_transmissions(1.0, 3, 2), 0.0);
    }
}
