//! Numerical helpers: log-space binomials and quadrature.
//!
//! The paper's measures reach values around `10⁻¹²⁰` (Figure 6), well
//! within `f64` range but far outside the reach of naive factorials;
//! binomial terms are therefore computed in log space.

/// Natural log of `n!`, via `ln Γ(n+1)` (Stirling–Lanczos); exact
/// table for small `n`.
pub fn ln_factorial(n: u64) -> f64 {
    #[allow(clippy::approx_constant, clippy::excessive_precision)]
    const TABLE: [f64; 21] = [
        0.0,
        0.0,
        0.693_147_180_559_945_3,
        1.791_759_469_228_055,
        3.178_053_830_347_945_8,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_683,
        27.899_271_383_840_89,
        30.671_860_106_080_675,
        33.505_073_450_136_89,
        36.395_445_208_033_05,
        39.339_884_187_199_495,
        42.335_616_460_753_485,
    ];
    if n < 21 {
        return TABLE[n as usize];
    }
    ln_gamma(n as f64 + 1.0)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7,
/// n = 9), accurate to ~1e-13 for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "C(n, k) requires k <= n");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Probability mass of `Binomial(n, q)` at `k`, computed in log space.
///
/// ```
/// # use cbfd_analysis::numerics::binomial_pmf;
/// let p = binomial_pmf(10, 0.5, 5);
/// assert!((p - 0.24609375).abs() < 1e-12);
/// ```
pub fn binomial_pmf(n: u64, q: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    if k > n {
        return 0.0;
    }
    if q == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if q == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * q.ln() + (n - k) as f64 * (1.0 - q).ln()).exp()
}

/// Adaptive Simpson quadrature of `f` over `[a, b]` with absolute
/// tolerance `tol`.
///
/// ```
/// # use cbfd_analysis::numerics::integrate;
/// let area = integrate(|x| x * x, 0.0, 3.0, 1e-10);
/// assert!((area - 9.0).abs() < 1e-8);
/// ```
pub fn integrate(f: impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> f64 {
    fn simpson(f: &impl Fn(f64) -> f64, a: f64, fa: f64, b: f64, fb: f64) -> (f64, f64, f64) {
        let m = (a + b) / 2.0;
        let fm = f(m);
        ((b - a) / 6.0 * (fa + 4.0 * fm + fb), m, fm)
    }
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        f: &impl Fn(f64) -> f64,
        a: f64,
        fa: f64,
        b: f64,
        fb: f64,
        whole: f64,
        m: f64,
        fm: f64,
        tol: f64,
        depth: u32,
    ) -> f64 {
        let (left, lm, flm) = simpson(f, a, fa, m, fm);
        let (right, rm, frm) = simpson(f, m, fm, b, fb);
        let delta = left + right - whole;
        if depth == 0 || delta.abs() <= 15.0 * tol {
            return left + right + delta / 15.0;
        }
        recurse(f, a, fa, m, fm, left, lm, flm, tol / 2.0, depth - 1)
            + recurse(f, m, fm, b, fb, right, rm, frm, tol / 2.0, depth - 1)
    }
    let fa = f(a);
    let fb = f(b);
    let (whole, m, fm) = simpson(&f, a, fa, b, fb);
    recurse(&f, a, fa, b, fb, whole, m, fm, tol, 40)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(20) - 2.432_902_008_176_64e18f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn factorial_large_values_match_stirling_region() {
        // 100! has ln ≈ 363.739...
        assert!((ln_factorial(100) - 363.739_375_555_563_5).abs() < 1e-8);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn choose_matches_pascal() {
        assert!((ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_choose(98, 49).exp() - 2.547_761_225_898_1e28).abs() / 2.5e28 < 1e-9);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, q) in &[(10u64, 0.3), (50, 0.05), (98, 0.391)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, q, k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} q={q}: {total}");
        }
    }

    #[test]
    fn binomial_pmf_edge_probabilities() {
        assert_eq!(binomial_pmf(5, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(5, 0.0, 1), 0.0);
        assert_eq!(binomial_pmf(5, 1.0, 5), 1.0);
        assert_eq!(binomial_pmf(5, 0.5, 6), 0.0);
    }

    #[test]
    fn integration_of_smooth_functions() {
        let pi = integrate(|x| 4.0 / (1.0 + x * x), 0.0, 1.0, 1e-12);
        assert!((pi - std::f64::consts::PI).abs() < 1e-9);
        let e = integrate(f64::exp, 0.0, 1.0, 1e-12);
        assert!((e - (std::f64::consts::E - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn integration_handles_reversed_scale() {
        // The paper's An integral: 4∫₀^c (√(R²−x²) − R/2) dx with
        // c = (√3/2)R equals R²(2π/3 − √3/2).
        let r: f64 = 100.0;
        let c = (3f64.sqrt() / 2.0) * r;
        let an = 4.0 * integrate(|x| (r * r - x * x).sqrt() - 0.5 * r, 0.0, c, 1e-9);
        let expected = r * r * (2.0 * std::f64::consts::PI / 3.0 - 3f64.sqrt() / 2.0);
        assert!((an - expected).abs() < 1e-5, "{an} vs {expected}");
    }
}
