//! `P̂(Incompleteness)` — the completeness measure of **Figure 7**.
//!
//! The paper omits the formulation for space; we re-derive it from the
//! intra-cluster completeness enhancement of Section 4.2. A member `v`
//! fails to learn a health update iff:
//!
//! 1. the CH's `fds.R-3` broadcast is lost to `v`: probability `p`;
//! 2. progressive peer forwarding fails. Each of `v`'s `k` in-cluster
//!    neighbours can recover the update for `v` only if it (a) itself
//!    received the update (`1−p`), (b) heard `v`'s forwarding request
//!    (`1−p`), and (c) its forwarded copy reached `v` (`1−p`) — so a
//!    neighbour fails with probability `1−(1−p)³`. The quit-on-ack
//!    back-off scheme gives every holder its own slot, so recovery
//!    fails only if **all** `k` neighbours fail.
//!
//! With `k ~ Binomial(N−2, An/Au)` (the worst case puts `v` on the
//! circumference, as in Figure 4(b)) and the binomial sum telescoping:
//!
//! ```text
//! P̂(Inc) = p · (1 − (An/Au)(1−p)³)^{N−2}.
//! ```

use crate::geometry::worst_case_an_fraction;
use crate::numerics::binomial_pmf;

/// The explicit binomial sum over the neighbour count `k`.
pub fn binomial_sum(n: u64, p: f64, an_fraction: f64) -> f64 {
    assert!(n >= 2, "a cluster needs the CH and the member");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(
        (0.0..=1.0).contains(&an_fraction),
        "An/Au must be a fraction"
    );
    let m = n - 2;
    let neighbor_fails = 1.0 - (1.0 - p).powi(3);
    let total: f64 = (0..=m)
        .map(|k| binomial_pmf(m, an_fraction, k) * neighbor_fails.powi(k as i32))
        .sum();
    p * total
}

/// The telescoped closed form `p(1 − (An/Au)(1−p)³)^{N−2}`.
pub fn closed_form(n: u64, p: f64, an_fraction: f64) -> f64 {
    assert!(n >= 2, "a cluster needs the CH and the member");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(
        (0.0..=1.0).contains(&an_fraction),
        "An/Au must be a fraction"
    );
    let q = 1.0 - an_fraction * (1.0 - p).powi(3);
    p * q.powi((n - 2) as i32)
}

/// The worst-case measure plotted in Figure 7: the recovering member
/// on the cluster circumference.
///
/// ```
/// # use cbfd_analysis::incompleteness::worst_case;
/// // Figure 7's range: noticeable at p = 0.5 for sparse clusters...
/// assert!(worst_case(50, 0.5) > 1e-3);
/// // ...vanishing (≈2e-19) at p = 0.05 for dense ones.
/// assert!(worst_case(100, 0.05) < 1e-15);
/// ```
pub fn worst_case(n: u64, p: f64) -> f64 {
    closed_form(n, p, worst_case_an_fraction())
}

/// The *average-case* measure over a uniformly placed member (see
/// [`false_detection::average_case`](crate::false_detection::average_case)
/// for the marginalization); protocol-level simulations with uniform
/// members converge to this, below the [`worst_case`] bound.
pub fn average_case(n: u64, p: f64) -> f64 {
    crate::numerics::integrate(
        |t| 2.0 * t * closed_form(n, p, crate::geometry::an_fraction(t)),
        0.0,
        1.0,
        1e-12,
    )
}

/// The ablation counterpart: completeness *without* peer forwarding is
/// simply the probability of losing the CH broadcast, `p`,
/// independent of density.
pub fn without_peer_forwarding(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_closed_form_agree() {
        for &n in &[50u64, 75, 100] {
            for i in 1..=10 {
                let p = i as f64 * 0.05;
                let a = binomial_sum(n, p, worst_case_an_fraction());
                let b = worst_case(n, p);
                let rel = (a - b).abs() / b.max(f64::MIN_POSITIVE);
                assert!(rel < 1e-9, "n={n} p={p}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn figure7_magnitudes_and_ordering() {
        // N = 50 is the top curve, N = 100 the bottom one.
        for i in 1..=10 {
            let p = i as f64 * 0.05;
            assert!(worst_case(50, p) > worst_case(75, p));
            assert!(worst_case(75, p) > worst_case(100, p));
        }
        // The y-axis spans many decades: ≈2e-19 at the benign corner,
        // a few percent at the harsh one.
        assert!(worst_case(100, 0.05) < 1e-15);
        assert!(worst_case(50, 0.5) < 0.1);
    }

    #[test]
    fn larger_n_is_more_p_sensitive() {
        // The paper: "P̂(Incompleteness) becomes more sensitive to p
        // when N becomes larger" — the log-slope over the p range is
        // steeper for N = 100 than for N = 50.
        let slope = |n: u64| worst_case(n, 0.5).ln() - worst_case(n, 0.05).ln();
        assert!(slope(100) > slope(50));
    }

    #[test]
    fn peer_forwarding_wins_the_ablation() {
        for i in 1..=10 {
            let p = i as f64 * 0.05;
            assert!(worst_case(50, p) < without_peer_forwarding(p));
        }
    }

    #[test]
    fn monotone_in_p() {
        let mut prev = 0.0;
        for i in 1..=10 {
            let p = i as f64 * 0.05;
            let v = worst_case(75, p);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn extremes() {
        assert_eq!(worst_case(50, 0.0), 0.0);
        assert!((worst_case(50, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(without_peer_forwarding(0.25), 0.25);
    }
}

#[cfg(test)]
mod average_case_tests {
    use super::*;

    #[test]
    fn average_sits_between_center_and_rim() {
        for &(n, p) in &[(50u64, 0.5), (100, 0.3)] {
            let avg = average_case(n, p);
            assert!(avg < worst_case(n, p), "n={n} p={p}");
            assert!(avg > closed_form(n, p, 1.0), "n={n} p={p}");
        }
    }
}
