//! `P̂(False detection)` — the accuracy measure of **Figure 5**.
//!
//! An operational member `v` is falsely detected iff
//!
//! * **C1** — the CH receives neither `v`'s heartbeat (`fds.R-1`) nor
//!   `v`'s digest (`fds.R-2`): probability `p²`; and
//! * **C2** — no digest the CH receives reflects `v`'s heartbeat:
//!   a neighbour helps only if it overheard the heartbeat (`1−p`) and
//!   its digest reached the CH (`1−p`), so each of `v`'s `k`
//!   in-cluster neighbours independently *fails* to help with
//!   probability `1−(1−p)² = p(2−p)`.
//!
//! With `k ~ Binomial(N−2, An/Au)` (hosts uniform over the cluster
//! disk) the paper's double sum is
//!
//! ```text
//! P̂ = p² Σₖ C(N−2,k)(An/Au)ᵏ(1−An/Au)^{N−2−k} Σⱼ C(k,j)((1−p)p)ʲ p^{k−j}
//! ```
//!
//! whose inner sum telescopes to `(p(2−p))ᵏ`, giving the closed form
//!
//! ```text
//! P̂ = p² (1 − (An/Au)(1−p)²)^{N−2}.
//! ```
//!
//! Both forms are implemented; a property test pins their equality.

use crate::geometry::worst_case_an_fraction;
use crate::numerics::binomial_pmf;

/// The paper's printed double sum, evaluated term by term.
///
/// `n` is the cluster population (the paper's `N ∈ {50, 75, 100}`),
/// `p` the message-loss probability, `an_fraction` the neighbourhood
/// fraction `An/Au` (use
/// [`worst_case_an_fraction`] for the circumference-node upper
/// bound).
///
/// # Panics
///
/// Panics if `n < 2` or the probabilities are out of range.
pub fn paper_sum(n: u64, p: f64, an_fraction: f64) -> f64 {
    assert!(n >= 2, "a cluster needs the CH and the judged member");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(
        (0.0..=1.0).contains(&an_fraction),
        "An/Au must be a fraction"
    );
    let m = n - 2;
    let mut total = 0.0;
    for k in 0..=m {
        let weight = binomial_pmf(m, an_fraction, k);
        // Inner sum: Σ_j C(k,j) ((1−p)p)^j p^{k−j}; j = 0 is the
        // "nobody overheard" term, j > 0 the "overheard but digests
        // lost" terms.
        let mut inner = 0.0;
        for j in 0..=k {
            inner += (crate::numerics::ln_choose(k, j)
                + j as f64 * ((1.0 - p) * p).max(f64::MIN_POSITIVE).ln()
                + (k - j) as f64 * p.max(f64::MIN_POSITIVE).ln())
            .exp();
        }
        if p == 0.0 {
            inner = if k == 0 { 1.0 } else { 0.0 };
        }
        total += weight * inner;
    }
    p * p * total
}

/// The telescoped closed form `p²(1 − (An/Au)(1−p)²)^{N−2}`.
///
/// ```
/// # use cbfd_analysis::false_detection::{closed_form, worst_case};
/// // Densely populated cluster at heavy loss: still small.
/// let p_fd = worst_case(100, 0.5);
/// assert!(p_fd < 1e-4);
/// assert!((p_fd - closed_form(100, 0.5, 0.391_002_218_96)).abs() < 1e-12);
/// ```
pub fn closed_form(n: u64, p: f64, an_fraction: f64) -> f64 {
    assert!(n >= 2, "a cluster needs the CH and the judged member");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(
        (0.0..=1.0).contains(&an_fraction),
        "An/Au must be a fraction"
    );
    let q = 1.0 - an_fraction * (1.0 - p) * (1.0 - p);
    p * p * q.powi((n - 2) as i32)
}

/// The worst-case measure plotted in Figure 5: the judged member on
/// the cluster circumference.
pub fn worst_case(n: u64, p: f64) -> f64 {
    closed_form(n, p, worst_case_an_fraction())
}

/// The *average-case* measure over a uniformly placed member: the
/// position-marginalized `∫₀¹ 2t · P̂(n, p, An(t)/Au) dt` (density
/// `2t` because area grows with the radius). This is what a
/// protocol-level simulation with uniformly placed members should
/// converge to, whereas [`worst_case`] upper-bounds it.
pub fn average_case(n: u64, p: f64) -> f64 {
    crate::numerics::integrate(
        |t| 2.0 * t * closed_form(n, p, crate::geometry::an_fraction(t)),
        0.0,
        1.0,
        1e-12,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_closed_form_agree() {
        for &n in &[50u64, 75, 100] {
            for i in 1..=10 {
                let p = i as f64 * 0.05;
                let a = paper_sum(n, p, worst_case_an_fraction());
                let b = worst_case(n, p);
                let rel = (a - b).abs() / b.max(f64::MIN_POSITIVE);
                assert!(rel < 1e-9, "n={n} p={p}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn monotone_in_p() {
        let mut prev = 0.0;
        for i in 1..=10 {
            let p = i as f64 * 0.05;
            let v = worst_case(75, p);
            assert!(v > prev, "P̂ must grow with loss probability");
            prev = v;
        }
    }

    #[test]
    fn denser_clusters_are_more_accurate() {
        for i in 1..=10 {
            let p = i as f64 * 0.05;
            assert!(worst_case(100, p) < worst_case(75, p));
            assert!(worst_case(75, p) < worst_case(50, p));
        }
    }

    #[test]
    fn figure5_magnitudes() {
        // The figure's qualitative claims: at p = 0.5, N = 100 and 75
        // are "very small"; N = 50 is still "very reasonable"; at
        // p = 0.05 everything is tiny (the y-axis reaches 1e-25).
        assert!(worst_case(100, 0.5) < 1e-4);
        assert!(worst_case(75, 0.5) < 1e-3);
        assert!(worst_case(50, 0.5) < 1e-2);
        assert!(worst_case(100, 0.05) < 1e-18);
        assert!(worst_case(50, 0.05) > 1e-14 && worst_case(50, 0.05) < 1e-9);
    }

    #[test]
    fn perfect_channel_never_falsely_detects() {
        assert_eq!(worst_case(50, 0.0), 0.0);
    }

    #[test]
    fn certain_loss_always_falsely_detects() {
        // p = 1: everything is lost, C1 and C2 are certain.
        assert!((worst_case(50, 1.0) - 1.0).abs() < 1e-12);
        assert!((paper_sum(50, 1.0, worst_case_an_fraction()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn central_member_is_best_case() {
        // An/Au = 1 (member at the centre): maximal redundancy.
        for i in 1..=9 {
            let p = i as f64 * 0.05;
            assert!(closed_form(75, p, 1.0) < worst_case(75, p));
        }
    }

    #[test]
    fn two_node_cluster_degenerates_to_p_squared() {
        // N = 2: no helpers at all, the measure is exactly p².
        let p = 0.3;
        assert!((closed_form(2, p, 0.391) - p * p).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cluster needs")]
    fn tiny_cluster_rejected() {
        let _ = closed_form(1, 0.1, 0.391);
    }
}

#[cfg(test)]
mod average_case_tests {
    use super::*;

    #[test]
    fn average_sits_between_center_and_rim() {
        for &(n, p) in &[(50u64, 0.5), (100, 0.3)] {
            let avg = average_case(n, p);
            assert!(avg < worst_case(n, p), "n={n} p={p}");
            assert!(avg > closed_form(n, p, 1.0), "n={n} p={p}");
        }
    }
}
