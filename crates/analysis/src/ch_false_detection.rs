//! `P(False detection on CH)` — the accuracy measure of **Figure 6**.
//!
//! The paper omits this measure's formulation for space; we re-derive
//! it from the CH-failure rule of Section 4.2. The DCH wrongly judges
//! an operational clusterhead failed iff **all** of:
//!
//! 1. the CH's heartbeat is lost to the DCH (`fds.R-1`): `p`;
//! 2. the CH's digest is lost to the DCH (`fds.R-2`): `p`;
//! 3. the CH's health update is lost to the DCH (`fds.R-3`): `p`;
//! 4. no digest the DCH receives reflects the CH's heartbeat. The CH
//!    reaches **every** member by construction (the cluster is the
//!    CH's unit disk), so each of the `N−2` other members hears the
//!    heartbeat with probability `1−p` and its digest reaches the DCH
//!    with probability `1−p`; per-member failure is `1−(1−p)² =
//!    p(2−p)`.
//!
//! Hence `P(FD on CH) = p³ · (p(2−p))^{N−2}` when the DCH hears all
//! members, and the `d`-offset variant discounts members outside the
//! DCH's range by the lens fraction `An(d)/Au`.
//!
//! The extra `p` (condition 3) and the *full-cluster* audience of the
//! CH's heartbeat are exactly why the curves of Figure 6 sit far below
//! those of Figure 5 — the paper calls this out as "indeed reasonable
//! results".

use crate::geometry::an_fraction;

/// `p³ (p(2−p))^{N−2}`: the DCH hears every member (it is near the
/// centre of a dense cluster).
///
/// ```
/// # use cbfd_analysis::ch_false_detection::probability;
/// // The paper: "still below 10⁻⁶ even when N drops to 50" at p = 0.5.
/// assert!(probability(50, 0.5) < 1e-6);
/// ```
pub fn probability(n: u64, p: f64) -> f64 {
    assert!(n >= 2, "a cluster needs the CH and the DCH");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let per_member_silence = p * (2.0 - p);
    p.powi(3) * per_member_silence.powi((n - 2) as i32)
}

/// Range-limited variant: the DCH sits at normalized distance
/// `d_over_r ∈ [0, 1]` from the clusterhead, so a uniformly placed
/// member relays evidence only if it also lies within the DCH's range
/// (probability `An(d)/Au`). Per-member failure becomes
/// `1 − (An/Au)(1−p)²`.
///
/// At `d = 0` this degenerates to [`probability`].
pub fn probability_at_distance(n: u64, p: f64, d_over_r: f64) -> f64 {
    assert!(n >= 2, "a cluster needs the CH and the DCH");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let reach = an_fraction(d_over_r);
    let per_member_silence = 1.0 - reach * (1.0 - p) * (1.0 - p);
    p.powi(3) * per_member_silence.powi((n - 2) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::false_detection;

    #[test]
    fn figure6_magnitudes() {
        // "Practically negligible or extremely low when p is below
        // 0.25":
        assert!(probability(50, 0.25) < 1e-15);
        assert!(probability(100, 0.25) < 1e-30);
        // "Still very low for N = 100 and N = 75" at p = 0.5:
        assert!(probability(100, 0.5) < 1e-10);
        assert!(probability(75, 0.5) < 1e-8);
        // "Below 10⁻⁶ even when N drops to 50":
        assert!(probability(50, 0.5) < 1e-6);
        // The y-axis of Figure 6 reaches 1e-120; small p, large N gets
        // there.
        assert!(probability(100, 0.05) < 1e-95);
    }

    #[test]
    fn dch_is_less_error_prone_than_ch() {
        // The paper's comparison of Figures 5 and 6: the DCH's
        // judgement of the CH is *more* reliable than the CH's
        // judgement of a circumference member, because everyone hears
        // the CH.
        for &n in &[50u64, 75, 100] {
            for i in 1..=10 {
                let p = i as f64 * 0.05;
                assert!(
                    probability(n, p) < false_detection::worst_case(n, p),
                    "n={n} p={p}"
                );
            }
        }
    }

    #[test]
    fn monotone_in_p_and_density() {
        let mut prev = 0.0;
        for i in 1..=10 {
            let p = i as f64 * 0.05;
            let v = probability(75, p);
            assert!(v > prev);
            prev = v;
            assert!(probability(100, p) < probability(50, p));
        }
    }

    #[test]
    fn distance_zero_matches_base_formula() {
        for i in 1..=10 {
            let p = i as f64 * 0.05;
            let a = probability(75, p);
            let b = probability_at_distance(75, p, 0.0);
            assert!((a - b).abs() / a.max(f64::MIN_POSITIVE) < 1e-12);
        }
    }

    #[test]
    fn displaced_dch_is_more_error_prone() {
        // Members beyond the DCH's reach cannot relay evidence, so a
        // displaced DCH misjudges more often.
        for i in 1..=9 {
            let p = i as f64 * 0.05;
            assert!(probability_at_distance(75, p, 0.8) > probability_at_distance(75, p, 0.2));
        }
    }

    #[test]
    fn extremes() {
        assert_eq!(probability(50, 0.0), 0.0);
        assert!((probability(50, 1.0) - 1.0).abs() < 1e-12);
    }
}
