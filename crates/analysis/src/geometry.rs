//! The cluster-disk geometry of the paper's analysis (Figure 4).
//!
//! A cluster is a unit disk of radius `R` (the transmission range)
//! centred on the clusterhead. A member `v` at distance `d` from the
//! centre covers the overlap `An` between its own range disk and the
//! cluster disk; the analysis needs the fraction `An / Au` (with
//! `Au = πR²`), which depends only on `d/R`.
//!
//! This module is self-contained (pure math, no dependency on the
//! simulator); the integration tests cross-check it against
//! `cbfd_net::geometry`.

use std::f64::consts::PI;

/// Area of the intersection of two disks of equal radius `r` whose
/// centres are `d` apart.
pub fn lens_area(r: f64, d: f64) -> f64 {
    assert!(r > 0.0, "radius must be positive");
    assert!(d >= 0.0, "distance must be non-negative");
    if d >= 2.0 * r {
        return 0.0;
    }
    if d == 0.0 {
        return PI * r * r;
    }
    2.0 * r * r * (d / (2.0 * r)).acos() - (d / 2.0) * (4.0 * r * r - d * d).sqrt()
}

/// `An / Au` for a member at normalized distance `t = d/R` from the
/// clusterhead: the fraction of the cluster a member's radio covers.
///
/// ```
/// # use cbfd_analysis::geometry::an_fraction;
/// assert!((an_fraction(0.0) - 1.0).abs() < 1e-12);
/// assert!((an_fraction(1.0) - 0.391).abs() < 1e-3);
/// ```
pub fn an_fraction(t: f64) -> f64 {
    assert!((0.0..=1.0).contains(&t), "members lie inside the cluster");
    lens_area(1.0, t) / PI
}

/// The worst-case `An / Au`: a member on the cluster circumference
/// (`d = R`), the case the paper's upper bounds use. Equals
/// `(2π/3 − √3/2) / π ≈ 0.3910`.
pub fn worst_case_an_fraction() -> f64 {
    (2.0 * PI / 3.0 - 3f64.sqrt() / 2.0) / PI
}

/// The overlap fraction `Ag / Au` available for DCH-reachability
/// relays (Figure 2(a)): the region covered by **both** a deputy at
/// distance `d_dch` from the centre and a member at distance `d_v`,
/// with the two on opposite sides of the clusterhead (the worst
/// case). Computed as the lens of the two R-disks whose centres are
/// `d_dch + d_v` apart, clipped conservatively to the cluster area.
pub fn ag_fraction(d_dch: f64, d_v: f64) -> f64 {
    assert!((0.0..=1.0).contains(&d_dch), "DCH lies inside the cluster");
    assert!((0.0..=1.0).contains(&d_v), "member lies inside the cluster");
    let lens = lens_area(1.0, d_dch + d_v);
    (lens / PI).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_fraction_limits() {
        assert!((an_fraction(0.0) - 1.0).abs() < 1e-12);
        let expected = (2.0 * PI / 3.0 - 3f64.sqrt() / 2.0) / PI;
        assert!((an_fraction(1.0) - expected).abs() < 1e-12);
        assert!((worst_case_an_fraction() - expected).abs() < 1e-15);
    }

    #[test]
    fn an_fraction_is_monotone_decreasing() {
        let mut prev = an_fraction(0.0);
        for i in 1..=10 {
            let f = an_fraction(i as f64 / 10.0);
            assert!(f < prev);
            prev = f;
        }
    }

    #[test]
    fn worst_case_value_matches_paper_figure() {
        // ≈ 0.39100 (reported implicitly through the curves).
        assert!((worst_case_an_fraction() - 0.391_002_218_96).abs() < 1e-10);
    }

    #[test]
    fn ag_fraction_shrinks_with_separation() {
        // With both nodes at the centre the relay region is the whole
        // cluster; as they separate it shrinks to nothing at total
        // separation 2R.
        assert!((ag_fraction(0.0, 0.0) - 1.0).abs() < 1e-12);
        assert!(ag_fraction(0.5, 0.5) < ag_fraction(0.25, 0.25));
        assert_eq!(ag_fraction(1.0, 1.0), 0.0);
    }

    #[test]
    fn lens_area_degenerate_cases() {
        assert_eq!(lens_area(1.0, 2.0), 0.0);
        assert!((lens_area(1.0, 0.0) - PI).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "members lie inside the cluster")]
    fn an_fraction_rejects_outside() {
        let _ = an_fraction(1.5);
    }
}
