//! Conflicting failure reports (Section 4.2).
//!
//! The paper's worst failure mode: a deputy wrongly judges an
//! operational clusterhead failed, so "the CH and DCH \[may\] generate
//! two conflicting failure reports and broadcast them simultaneously …
//! the GWs may not notice the discrepancy and thus may forward the
//! conflicting reports to neighbouring clusters, resulting in
//! inconsistent views on failures. Nonetheless, due to the
//! exploitation of time, spatial, and message redundancies, the
//! likelihood of such a scenario will be extremely low."
//!
//! This module quantifies that claim: a *propagated conflict* needs
//! the deputy's false judgement (the Figure 6 measure) **and** at
//! least one gateway to receive the takeover update and forward it
//! outward before the discrepancy is noticed.

use crate::ch_false_detection;

/// Probability that, in one FDS execution, the deputy wrongly declares
/// the head failed **and** at least one of the cluster's `gateways`
/// receives the conflicting takeover update (and would therefore
/// forward it).
///
/// ```
/// # use cbfd_analysis::conflict::propagated_conflict;
/// // The paper's "extremely low" claim at its harshest plotted point:
/// let p = propagated_conflict(50, 0.5, 3);
/// assert!(p < 1e-6);
/// ```
///
/// # Panics
///
/// Panics if the parameters are out of range (see
/// [`ch_false_detection::probability`]).
pub fn propagated_conflict(n: u64, p: f64, gateways: u32) -> f64 {
    let false_takeover = ch_false_detection::probability(n, p);
    // At least one gateway hears the deputy's broadcast.
    let some_gateway_hears = 1.0 - p.powi(gateways as i32);
    false_takeover * some_gateway_hears
}

/// Expected number of propagated conflicts over a deployment lifetime:
/// `clusters × executions × propagated_conflict`. The operations-team
/// figure ("will we ever see an inconsistent view?").
pub fn expected_conflicts(n: u64, p: f64, gateways: u32, clusters: u64, executions: u64) -> f64 {
    propagated_conflict(n, p, gateways) * clusters as f64 * executions as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremely_low_at_paper_parameters() {
        // Even at the harsh corner (N = 50, p = 0.5, 3 gateways) a
        // propagated conflict is a once-in-ten-million-executions
        // event; at the benign end it is astronomically rare.
        assert!(propagated_conflict(50, 0.5, 3) < 1e-6);
        assert!(propagated_conflict(100, 0.25, 3) < 1e-30);
    }

    #[test]
    fn lifetime_expectation_stays_negligible() {
        // A 1000-cluster system running every second for a year:
        // ~3.2e10 cluster-executions.
        let per_exec = expected_conflicts(75, 0.3, 3, 1_000, 31_536_000);
        assert!(
            per_exec < 1e-3,
            "a year of operation should expect zero conflicts: {per_exec}"
        );
    }

    #[test]
    fn more_gateways_propagate_more_but_bounded_by_fig6() {
        let base = ch_false_detection::probability(50, 0.5);
        let one = propagated_conflict(50, 0.5, 1);
        let four = propagated_conflict(50, 0.5, 4);
        assert!(one < four);
        assert!(four <= base);
    }

    #[test]
    fn no_gateways_no_propagation() {
        assert_eq!(propagated_conflict(50, 0.5, 0), 0.0);
    }
}
