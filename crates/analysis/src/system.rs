//! System-wide completeness (experiment E7).
//!
//! The paper deliberately evaluates per-cluster measures, noting that
//! "global-level measures will require the assumptions of an
//! inter-cluster routing algorithm and a network topology"
//! (Section 5). This module supplies exactly those assumptions — the
//! cluster-graph flooding our protocol implements over the gateway
//! backbone — and composes the per-cluster measures into the global
//! completeness the definition actually speaks about:
//!
//! 1. a failure report originates in its cluster;
//! 2. it crosses each backbone link independently with the E5 success
//!    probability (gateway + ranked backups + retransmissions);
//! 3. within every *reached* cluster, each member is informed with
//!    the Figure 7 complement (position-averaged).
//!
//! Exact two-terminal reliability over general graphs is #P-hard, so
//! reachability is estimated by Monte Carlo over independent link
//! states — with the closed-form per-link and per-member factors kept
//! exact (a conditional estimator, like the others in
//! [`montecarlo`](crate::montecarlo)).

use crate::incompleteness;
use crate::intercluster;
use crate::montecarlo::McResult;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// A cluster-level model of a deployed network.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemModel {
    /// Member count of each cluster.
    pub populations: Vec<u64>,
    /// Backbone links as `(cluster_a, cluster_b, backup_gateways)`.
    pub links: Vec<(usize, usize, u32)>,
    /// Message-loss probability.
    pub p: f64,
    /// Transmission attempts per forwarder per cycle (E5).
    pub attempts: u32,
    /// Head retransmission rounds (E5).
    pub retx: u32,
}

impl SystemModel {
    /// Validates the model's indices and parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.p) {
            return Err("p must be a probability".into());
        }
        if self.attempts == 0 {
            return Err("attempts must be positive".into());
        }
        for (a, b, _) in &self.links {
            if *a >= self.populations.len() || *b >= self.populations.len() {
                return Err(format!("link ({a}, {b}) references an unknown cluster"));
            }
            if a == b {
                return Err("self links are not allowed".into());
            }
        }
        Ok(())
    }

    /// The per-link report-crossing success probability (E5).
    pub fn link_success(&self, backups: u32) -> f64 {
        1.0 - intercluster::failure_probability(self.p, backups, self.attempts, self.retx)
    }

    /// Probability that a member of a reached cluster of population
    /// `n` ends up informed (the Figure 7 complement, position
    /// averaged; population 1 means the head alone, always informed).
    pub fn member_informed(&self, n: u64) -> f64 {
        if n < 2 {
            1.0
        } else {
            1.0 - incompleteness::average_case(n, self.p)
        }
    }

    /// Monte Carlo estimate of the expected fraction of operational
    /// members (outside the origin cluster's head) informed of a
    /// failure originating in `origin`.
    ///
    /// # Panics
    ///
    /// Panics if the model is invalid or `origin` is out of range.
    pub fn informed_fraction(&self, origin: usize, trials: u64, seed: u64) -> McResult {
        self.validate().expect("invalid system model");
        assert!(origin < self.populations.len(), "unknown origin cluster");
        let mut rng = StdRng::seed_from_u64(seed);
        let link_success: Vec<f64> = self
            .links
            .iter()
            .map(|(_, _, backups)| self.link_success(*backups))
            .collect();
        let member_informed: Vec<f64> = self
            .populations
            .iter()
            .map(|n| self.member_informed(*n))
            .collect();
        let total_members: f64 = self.populations.iter().map(|n| *n as f64).sum();

        let mut samples = Vec::with_capacity(trials as usize);
        let mut reached = vec![false; self.populations.len()];
        for _ in 0..trials {
            // Sample backbone link states; flood from the origin.
            reached.iter_mut().for_each(|r| *r = false);
            reached[origin] = true;
            let up: Vec<bool> = link_success.iter().map(|s| rng.random_bool(*s)).collect();
            let mut queue = VecDeque::from([origin]);
            while let Some(c) = queue.pop_front() {
                for (i, (a, b, _)) in self.links.iter().enumerate() {
                    if !up[i] {
                        continue;
                    }
                    let other = if *a == c {
                        *b
                    } else if *b == c {
                        *a
                    } else {
                        continue;
                    };
                    if !reached[other] {
                        reached[other] = true;
                        queue.push_back(other);
                    }
                }
            }
            let informed: f64 = reached
                .iter()
                .zip(&self.populations)
                .zip(&member_informed)
                .map(|((r, n), mi)| if *r { *n as f64 * mi } else { 0.0 })
                .sum();
            samples.push(informed / total_members);
        }
        summarize(&samples)
    }

    /// Averages [`SystemModel::informed_fraction`] over every possible
    /// origin cluster.
    pub fn mean_informed_fraction(&self, trials_per_origin: u64, seed: u64) -> f64 {
        (0..self.populations.len())
            .map(|origin| {
                self.informed_fraction(origin, trials_per_origin, seed + origin as u64)
                    .mean
            })
            .sum::<f64>()
            / self.populations.len() as f64
    }
}

fn summarize(samples: &[f64]) -> McResult {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0).max(1.0);
    McResult {
        mean,
        std_error: (var / n).sqrt(),
        trials: samples.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(clusters: usize, n: u64, backups: u32, p: f64) -> SystemModel {
        SystemModel {
            populations: vec![n; clusters],
            links: (0..clusters - 1).map(|i| (i, i + 1, backups)).collect(),
            p,
            attempts: 2,
            retx: 2,
        }
    }

    #[test]
    fn lossless_systems_are_fully_informed() {
        let model = chain(5, 50, 2, 0.0);
        let r = model.informed_fraction(0, 200, 1);
        assert!((r.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deeper_chains_lose_more() {
        let shallow = chain(2, 50, 0, 0.4).informed_fraction(0, 4_000, 2).mean;
        let deep = chain(8, 50, 0, 0.4).informed_fraction(0, 4_000, 2).mean;
        assert!(deep < shallow, "{deep} !< {shallow}");
    }

    #[test]
    fn backups_rescue_deep_chains() {
        let bare = chain(8, 50, 0, 0.4).informed_fraction(0, 4_000, 3).mean;
        let backed = chain(8, 50, 3, 0.4).informed_fraction(0, 4_000, 3).mean;
        assert!(backed > bare + 0.05, "{backed} vs {bare}");
        assert!(
            backed > 0.95,
            "three backups should nearly saturate: {backed}"
        );
    }

    #[test]
    fn redundant_topology_beats_a_chain() {
        // A ring gives every cluster two disjoint paths.
        let p = 0.45;
        let chain_model = chain(6, 50, 0, p);
        let mut ring = chain_model.clone();
        ring.links.push((5, 0, 0));
        let c = chain_model.informed_fraction(0, 6_000, 4).mean;
        let r = ring.informed_fraction(0, 6_000, 4).mean;
        assert!(r > c, "ring {r} must beat chain {c}");
    }

    #[test]
    fn origin_averaging_is_bounded() {
        let model = chain(4, 75, 1, 0.3);
        let f = model.mean_informed_fraction(1_000, 5);
        assert!((0.0..=1.0).contains(&f));
        assert!(f > 0.9, "moderate loss with a backup should stay high: {f}");
    }

    #[test]
    fn validation_catches_bad_models() {
        let mut m = chain(3, 50, 1, 0.2);
        m.links.push((0, 9, 1));
        assert!(m.validate().is_err());
        let mut m = chain(3, 50, 1, 0.2);
        m.links.push((1, 1, 0));
        assert!(m.validate().is_err());
        let mut m = chain(3, 50, 1, 0.2);
        m.p = 1.5;
        assert!(m.validate().is_err());
    }

    #[test]
    fn singleton_clusters_count_their_head_as_informed() {
        let model = SystemModel {
            populations: vec![50, 1],
            links: vec![(0, 1, 0)],
            p: 0.0,
            attempts: 1,
            retx: 0,
        };
        assert_eq!(model.member_informed(1), 1.0);
        let r = model.informed_fraction(0, 100, 6);
        assert!((r.mean - 1.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod informed_fraction_edge_tests {
    use super::*;

    #[test]
    fn total_loss_informs_only_the_origin() {
        let model = SystemModel {
            populations: vec![10, 10, 10],
            links: vec![(0, 1, 0), (1, 2, 0)],
            p: 1.0,
            attempts: 1,
            retx: 0,
        };
        // p = 1 inside a cluster also means members learn nothing, so
        // only the origin's head-side fraction... the member_informed
        // factor is 1 − incompleteness(10, 1.0) = 0 for members —
        // exactly zero coverage beyond nothing at all.
        let r = model.informed_fraction(0, 200, 1);
        assert!(r.mean < 1e-9, "{}", r.mean);
    }

    #[test]
    fn disconnected_model_caps_at_component_mass() {
        let model = SystemModel {
            populations: vec![30, 30],
            links: vec![], // no backbone at all
            p: 0.0,
            attempts: 1,
            retx: 0,
        };
        let r = model.informed_fraction(0, 100, 2);
        assert!((r.mean - 0.5).abs() < 1e-9, "{}", r.mean);
    }

    #[test]
    fn deterministic_per_seed() {
        let model = SystemModel {
            populations: vec![50; 4],
            links: vec![(0, 1, 1), (1, 2, 1), (2, 3, 1)],
            p: 0.4,
            attempts: 2,
            retx: 1,
        };
        let a = model.informed_fraction(0, 500, 9);
        let b = model.informed_fraction(0, 500, 9);
        assert_eq!(a, b);
    }
}
