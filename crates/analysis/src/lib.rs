//! Closed-form probabilistic analysis of the cluster-based failure
//! detection service, reproducing Section 5 of the DSN 2004 paper.
//!
//! The paper's evaluation is analysis-only; this crate implements the
//! printed formula for Figure 5, re-derives the two formulas the paper
//! omits for space (Figures 6 and 7 — the derivations are documented
//! in the respective modules and in `DESIGN.md`), adds the two
//! extension studies the paper sketches (DCH reachability, E4, and
//! inter-cluster forwarding reliability, E5), and validates everything
//! by conditional and direct Monte Carlo.
//!
//! # Quick example
//!
//! ```
//! use cbfd_analysis::{false_detection, incompleteness};
//!
//! // Figure 5 at N = 100, p = 0.5: very small despite heavy loss.
//! assert!(false_detection::worst_case(100, 0.5) < 1e-4);
//! // Figure 7 at N = 100, p = 0.05: astronomically small.
//! assert!(incompleteness::worst_case(100, 0.05) < 1e-15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ch_false_detection;
pub mod conflict;
pub mod dch_reach;
pub mod false_detection;
pub mod geometry;
pub mod incompleteness;
pub mod intercluster;
pub mod latency;
pub mod montecarlo;
pub mod numerics;
pub mod sensitivity;
pub mod series;
pub mod system;
