//! Sensitivity of the measures to density and loss — the "interesting
//! interactions among N, p, and the measures" the paper discusses at
//! the end of Section 5.2:
//!
//! > when N increases, spatial redundancy and inherent message
//! > redundancy will increase accordingly … a decreased likelihood of
//! > false detection … On the other hand, a larger N means more
//! > messaging activities in a cluster; that, in turn, makes the
//! > system behavior more sensitive to the variations of p.
//!
//! Both effects fall out of the closed forms: the measures are of the
//! shape `p^a (1 − c(1−p)^b)^{N−2}`, so the *level* decreases
//! geometrically in `N` while the *log-slope* in `p` grows linearly in
//! `N`. This module exposes those elasticities for any of the
//! measures, with tests pinning the paper's observations.

/// Log-slope of a measure in `p` (elasticity): the symmetric finite
/// difference `d ln f / d p` at `p`, using step `h`.
///
/// # Panics
///
/// Panics if the evaluation window leaves `(0, 1)` or the measure is
/// non-positive there.
pub fn log_slope_in_p(f: impl Fn(f64) -> f64, p: f64, h: f64) -> f64 {
    assert!(p - h > 0.0 && p + h < 1.0, "window must stay inside (0, 1)");
    let lo = f(p - h);
    let hi = f(p + h);
    assert!(
        lo > 0.0 && hi > 0.0,
        "measure must be positive in the window"
    );
    (hi.ln() - lo.ln()) / (2.0 * h)
}

/// Per-member improvement factor of a measure in `N`: `f(N+1)/f(N)`.
/// Values below 1 mean each added member reduces the measure; the
/// closed forms make this ratio constant in `N` (geometric decay).
pub fn density_ratio(f: impl Fn(u64) -> f64, n: u64) -> f64 {
    let a = f(n);
    let b = f(n + 1);
    assert!(a > 0.0, "measure must be positive at N = {n}");
    b / a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{false_detection, incompleteness};

    #[test]
    fn density_buys_geometric_accuracy() {
        // Each extra member multiplies P̂(FD) by the same factor < 1.
        let p = 0.3;
        let r50 = density_ratio(|n| false_detection::worst_case(n, p), 50);
        let r100 = density_ratio(|n| false_detection::worst_case(n, p), 100);
        assert!(r50 < 1.0);
        assert!(
            (r50 - r100).abs() < 1e-9,
            "geometric decay is N-independent"
        );
        // The factor equals 1 − (An/Au)(1−p)².
        let expected = 1.0 - crate::geometry::worst_case_an_fraction() * (1.0 - p) * (1.0 - p);
        assert!((r50 - expected).abs() < 1e-9);
    }

    #[test]
    fn larger_n_is_more_p_sensitive_for_both_measures() {
        // The paper's observation, quantified: the log-slope in p grows
        // with N.
        for f in [
            false_detection::worst_case as fn(u64, f64) -> f64,
            incompleteness::worst_case as fn(u64, f64) -> f64,
        ] {
            let s50 = log_slope_in_p(|p| f(50, p), 0.25, 1e-4);
            let s100 = log_slope_in_p(|p| f(100, p), 0.25, 1e-4);
            assert!(
                s100 > s50,
                "N = 100 must react more steeply to p: {s100} vs {s50}"
            );
        }
    }

    #[test]
    fn slopes_are_positive_everywhere_in_range() {
        for i in 2..=9 {
            let p = i as f64 * 0.05;
            let s = log_slope_in_p(|p| false_detection::worst_case(75, p), p, 1e-4);
            assert!(s > 0.0, "the measure must increase in p at p = {p}");
        }
    }

    #[test]
    fn slope_matches_analytic_derivative() {
        // d ln P̂/dp for P̂ = p²(1 − a(1−p)²)^{N−2}:
        //   2/p + (N−2)·2a(1−p)/(1 − a(1−p)²).
        let (n, p) = (75u64, 0.3);
        let a = crate::geometry::worst_case_an_fraction();
        let analytic =
            2.0 / p + (n as f64 - 2.0) * 2.0 * a * (1.0 - p) / (1.0 - a * (1.0 - p) * (1.0 - p));
        let numeric = log_slope_in_p(|p| false_detection::worst_case(n, p), p, 1e-5);
        assert!(
            (analytic - numeric).abs() / analytic < 1e-4,
            "{analytic} vs {numeric}"
        );
    }

    #[test]
    #[should_panic(expected = "window must stay inside")]
    fn slope_rejects_boundary_windows() {
        let _ = log_slope_in_p(|p| p, 0.0, 0.1);
    }
}
