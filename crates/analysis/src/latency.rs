//! Detection and dissemination latency.
//!
//! The paper notes that for its applications "completeness and
//! accuracy of failure detection are more important than time to
//! failure detection" (Section 2.1) — but an operations team still
//! wants to know *when* the news arrives. Two components:
//!
//! * **detection latency** is structural: a fail-stop node produces no
//!   evidence, so the rule fires at the first FDS execution after the
//!   crash — exactly one heartbeat interval in the fault-free-path
//!   case (tested at the protocol level);
//! * **dissemination latency** across the backbone is stochastic: per
//!   heartbeat interval, a report crosses each link with the E5 cycle
//!   success probability, retrying every interval until it does. The
//!   time to cross one link is geometric; the time to reach a cluster
//!   `d` hops away is the sum of `d` independent geometrics (a
//!   negative binomial), for which this module provides the mean and
//!   tail.

use crate::intercluster;

/// Per-interval probability that a report crosses one backbone link
/// (one full E5 cycle per heartbeat interval).
pub fn link_success_per_interval(p: f64, backups: u32, attempts: u32, retx: u32) -> f64 {
    1.0 - intercluster::failure_probability(p, backups, attempts, retx)
}

/// Expected intervals for a report to reach a cluster `hops` links
/// away: `hops / q` with `q` the per-interval link success (mean of a
/// negative binomial with `hops` successes).
///
/// # Panics
///
/// Panics unless `0 < q <= 1`.
///
/// ```
/// # use cbfd_analysis::latency::expected_intervals;
/// assert_eq!(expected_intervals(3, 1.0), 3.0);
/// assert!((expected_intervals(3, 0.5) - 6.0).abs() < 1e-12);
/// ```
pub fn expected_intervals(hops: u32, q: f64) -> f64 {
    assert!(q > 0.0 && q <= 1.0, "q must be in (0, 1]");
    f64::from(hops) / q
}

/// Probability that a report has reached a cluster `hops` links away
/// within `intervals` heartbeat intervals: the negative-binomial CDF
/// `P[NB(hops, q) <= intervals]`, evaluated by summing the PMF.
///
/// ```
/// # use cbfd_analysis::latency::within;
/// // One perfectly reliable hop arrives in exactly one interval.
/// assert!((within(1, 1.0, 1) - 1.0).abs() < 1e-12);
/// // Three lossy hops rarely finish in three intervals.
/// assert!(within(3, 0.5, 3) < 0.2);
/// ```
pub fn within(hops: u32, q: f64, intervals: u32) -> f64 {
    assert!(q > 0.0 && q <= 1.0, "q must be in (0, 1]");
    if hops == 0 {
        return 1.0;
    }
    if intervals < hops {
        return 0.0;
    }
    // P[sum of `hops` geometrics == t] = C(t-1, hops-1) q^hops (1-q)^(t-hops)
    let mut total = 0.0;
    for t in hops..=intervals {
        let ln_pmf = crate::numerics::ln_choose(u64::from(t - 1), u64::from(hops - 1))
            + f64::from(hops) * q.ln()
            + f64::from(t - hops) * (1.0 - q).max(f64::MIN_POSITIVE).ln();
        let pmf = if q == 1.0 {
            if t == hops {
                1.0
            } else {
                0.0
            }
        } else {
            ln_pmf.exp()
        };
        total += pmf;
    }
    total.min(1.0)
}

/// Intervals needed to reach a cluster `hops` away with probability at
/// least `confidence` (smallest such count; a coarse planning figure
/// for "how long until the whole field knows").
pub fn intervals_for_confidence(hops: u32, q: f64, confidence: f64) -> u32 {
    assert!(
        (0.0..1.0).contains(&confidence),
        "confidence must be in [0, 1)"
    );
    let mut t = hops;
    while within(hops, q, t) < confidence {
        t += 1;
        if t > hops.saturating_mul(1_000).max(10_000) {
            break; // pathological q; cap the search
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_links_arrive_in_hops_intervals() {
        assert_eq!(expected_intervals(5, 1.0), 5.0);
        assert!((within(5, 1.0, 5) - 1.0).abs() < 1e-12);
        assert_eq!(within(5, 1.0, 4), 0.0);
        assert_eq!(intervals_for_confidence(5, 1.0, 0.99), 5);
    }

    #[test]
    fn cdf_is_monotone_and_converges() {
        let q = 0.6;
        let mut prev = 0.0;
        for t in 3..40 {
            let v = within(3, q, t);
            assert!(v >= prev);
            prev = v;
        }
        assert!(prev > 0.999, "the CDF must converge to 1: {prev}");
    }

    #[test]
    fn mean_matches_simulation_of_geometrics() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let q = 0.4;
        let hops = 4;
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 20_000;
        let mut total = 0u64;
        for _ in 0..trials {
            for _ in 0..hops {
                let mut t = 1;
                while !rng.random_bool(q) {
                    t += 1;
                }
                total += t;
            }
        }
        let empirical = total as f64 / trials as f64;
        let analytic = expected_intervals(hops, q);
        assert!(
            (empirical - analytic).abs() / analytic < 0.02,
            "{empirical} vs {analytic}"
        );
    }

    #[test]
    fn zero_hops_is_immediate() {
        assert_eq!(within(0, 0.3, 0), 1.0);
        assert_eq!(intervals_for_confidence(0, 0.3, 0.99), 0);
    }

    #[test]
    fn realistic_paper_scale_planning_figure() {
        // p = 0.3, 2 backups: per-interval link success is essentially
        // certain, so even a 6-hop backbone is informed within 7
        // intervals at 99% confidence.
        let q = link_success_per_interval(0.3, 2, 2, 2);
        assert!(q > 0.999);
        assert!(intervals_for_confidence(6, q, 0.99) <= 7);
        // Without backups at p = 0.5, the same radius needs slack.
        let q0 = link_success_per_interval(0.5, 0, 1, 0);
        assert!(intervals_for_confidence(6, q0, 0.99) > 8);
    }

    #[test]
    #[should_panic(expected = "q must be in (0, 1]")]
    fn zero_success_rejected() {
        let _ = expected_intervals(1, 0.0);
    }
}
