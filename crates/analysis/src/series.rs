//! Figure-series generation: the exact sweeps plotted in the paper.
//!
//! Every figure of Section 5 sweeps the message-loss probability
//! `p ∈ {0.05, 0.10, …, 0.50}` for cluster populations
//! `N ∈ {50, 75, 100}`; these helpers regenerate those series (plus
//! the extension studies E4/E5) as plain data that the bench harness
//! prints and writes to CSV.

use crate::{ch_false_detection, dch_reach, false_detection, incompleteness, intercluster};
use serde::{Deserialize, Serialize};

/// The paper's cluster populations.
pub const POPULATIONS: [u64; 3] = [50, 75, 100];

/// The paper's loss-probability grid: 0.05 to 0.50 in steps of 0.05.
pub fn loss_grid() -> Vec<f64> {
    (1..=10).map(|i| i as f64 * 0.05).collect()
}

/// One point of a figure series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FigPoint {
    /// Cluster population `N`.
    pub n: u64,
    /// Message-loss probability `p`.
    pub p: f64,
    /// The measure's value.
    pub value: f64,
}

/// Figure 5: `P̂(False detection)` over the full grid.
pub fn fig5() -> Vec<FigPoint> {
    sweep(false_detection::worst_case)
}

/// Figure 6: `P(False detection on CH)` over the full grid.
pub fn fig6() -> Vec<FigPoint> {
    sweep(ch_false_detection::probability)
}

/// Figure 7: `P̂(Incompleteness)` over the full grid.
pub fn fig7() -> Vec<FigPoint> {
    sweep(incompleteness::worst_case)
}

/// E4: worst-case DCH miss probability as a function of the deputy's
/// displacement `d/R ∈ {0.0, 0.1, …, 1.0}`, one series per population
/// (at the paper's mid-range loss `p = 0.25`). The `p` field of each
/// point carries the displacement.
pub fn dch_reachability() -> Vec<FigPoint> {
    let mut points = Vec::new();
    for &n in &POPULATIONS {
        for i in 0..=10 {
            let d = i as f64 / 10.0;
            points.push(FigPoint {
                n,
                p: d,
                value: dch_reach::worst_case_miss(n, 0.25, d),
            });
        }
    }
    points
}

/// E5: inter-cluster forwarding failure probability vs `p`, one series
/// per backup-gateway count `n ∈ {0, …, 4}` (two attempts, two head
/// retransmissions). The `n` field of each point carries the backup
/// count.
pub fn intercluster_reliability() -> Vec<FigPoint> {
    let mut points = Vec::new();
    for backups in 0..=4u64 {
        for p in loss_grid() {
            points.push(FigPoint {
                n: backups,
                p,
                value: intercluster::failure_probability(p, backups as u32, 2, 2),
            });
        }
    }
    points
}

fn sweep(f: impl Fn(u64, f64) -> f64) -> Vec<FigPoint> {
    let mut points = Vec::new();
    for &n in &POPULATIONS {
        for p in loss_grid() {
            points.push(FigPoint {
                n,
                p,
                value: f(n, p),
            });
        }
    }
    points
}

/// Renders a series as CSV with the given value-column header.
pub fn to_csv(points: &[FigPoint], value_name: &str) -> String {
    let mut out = format!("n,p,{value_name}\n");
    for pt in points {
        out.push_str(&format!("{},{:.2},{:e}\n", pt.n, pt.p, pt.value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_paper() {
        let g = loss_grid();
        assert_eq!(g.len(), 10);
        assert!((g[0] - 0.05).abs() < 1e-12);
        assert!((g[9] - 0.50).abs() < 1e-12);
    }

    #[test]
    fn figure_series_have_thirty_points() {
        for series in [fig5(), fig6(), fig7()] {
            assert_eq!(series.len(), 30);
            assert!(series
                .iter()
                .all(|pt| pt.value.is_finite() && pt.value >= 0.0));
        }
    }

    #[test]
    fn fig6_sits_below_fig5() {
        for (a, b) in fig5().iter().zip(fig6()) {
            assert!(b.value <= a.value, "n={} p={}", a.n, a.p);
        }
    }

    #[test]
    fn csv_is_well_formed() {
        let csv = to_csv(&fig5(), "p_false_detection");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 31);
        assert_eq!(lines[0], "n,p,p_false_detection");
        assert!(lines[1].starts_with("50,0.05,"));
    }

    #[test]
    fn extension_series_are_populated() {
        assert_eq!(dch_reachability().len(), 33);
        assert_eq!(intercluster_reliability().len(), 50);
    }
}
