//! Monte Carlo validation of the closed-form measures.
//!
//! Two estimator families:
//!
//! * **Conditional (geometric) Monte Carlo** — sample the member
//!   *positions* (the only modelling approximation in the closed
//!   forms is the binomial neighbour-count induced by uniform
//!   placement), then evaluate the loss probabilities analytically
//!   per placement. This has tiny variance and validates the
//!   binomial-area approximation even where the probabilities are
//!   `10⁻²⁰`.
//! * **Direct Monte Carlo** — draw the actual Bernoulli losses and
//!   count events; only feasible where the target probability is
//!   large enough to observe (the `p = 0.5`, `N = 50` corner), which
//!   is exactly how it is used in tests.
//!
//! # Parallelism and determinism
//!
//! Every estimator shards its trial budget into fixed-size blocks
//! ([`SHARD_SIZE`] trials each), seeds shard `i` with
//! `derive_seed(seed, i)`, runs the shards on the
//! [`cbfd_net::par`] sweep runner, and merges the per-shard
//! [`Welford`] accumulators sequentially in shard order (Chan et
//! al.'s pairwise update). Because the shard boundaries, seeds, and
//! merge order depend only on `(trials, seed)` — never on the worker
//! count — every estimate is **bit-identical for any worker count**,
//! including 1.

use cbfd_net::par;
use cbfd_net::rng::derive_seed;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Trials per shard. A constant (rather than `trials / workers`) so
/// that shard seeds and merge order are independent of the machine.
pub const SHARD_SIZE: u64 = 8192;

/// A Monte Carlo estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McResult {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of samples.
    pub trials: u64,
}

impl McResult {
    /// Whether `value` lies within `sigmas` standard errors of the
    /// estimate.
    pub fn agrees_with(&self, value: f64, sigmas: f64) -> bool {
        (self.mean - value).abs() <= sigmas * self.std_error.max(f64::MIN_POSITIVE)
    }
}

/// A mergeable running-moments accumulator (Welford's online
/// algorithm plus Chan et al.'s pairwise combination).
///
/// Shards accumulate independently; merging in a fixed order yields a
/// result that does not depend on which thread ran which shard.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Folds one sample into the accumulator.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Combines two accumulators as if their samples had been pushed
    /// into one (Chan et al.). Not commutative at the bit level, so
    /// callers must merge in a fixed order.
    pub fn merge(self, other: Welford) -> Welford {
        if other.n == 0 {
            return self;
        }
        if self.n == 0 {
            return other;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * (other.n as f64 / n as f64);
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64 / n as f64);
        Welford { n, mean, m2 }
    }

    /// Finalizes into a mean ± standard-error summary.
    pub fn result(self) -> McResult {
        let variance = if self.n > 1 {
            self.m2 / (self.n - 1) as f64
        } else {
            0.0
        };
        McResult {
            mean: self.mean,
            std_error: (variance / self.n.max(1) as f64).sqrt(),
            trials: self.n,
        }
    }
}

#[cfg(test)]
fn summarize(samples: impl Iterator<Item = f64>) -> McResult {
    let mut acc = Welford::default();
    for x in samples {
        acc.push(x);
    }
    acc.result()
}

/// Runs `trials` evaluations of `sample` sharded across `workers`
/// threads with the determinism scheme described in the module docs.
fn estimate<F>(trials: u64, seed: u64, workers: usize, sample: F) -> McResult
where
    F: Fn(&mut StdRng) -> f64 + Sync,
{
    let shards = par::shard_trials(trials, SHARD_SIZE);
    let accs = par::par_map(workers, &shards, |_, &(shard, len)| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, shard));
        let mut acc = Welford::default();
        for _ in 0..len {
            acc.push(sample(&mut rng));
        }
        acc
    });
    accs.into_iter()
        .fold(Welford::default(), Welford::merge)
        .result()
}

/// Samples a point uniformly in the unit disk.
fn sample_in_disk(rng: &mut StdRng) -> (f64, f64) {
    let r = rng.random_range(0.0..1.0f64).sqrt();
    let theta = rng.random_range(0.0..std::f64::consts::TAU);
    (r * theta.cos(), r * theta.sin())
}

fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    dx * dx + dy * dy
}

/// Conditional MC for Figure 5's `P̂(False detection)`: the judged
/// member sits on the circumference at `(1, 0)`; the other `N−2`
/// members are uniform in the unit disk; the loss part
/// `p²(p(2−p))ᵏ` is evaluated exactly per placement.
pub fn false_detection(n: u64, p: f64, trials: u64, seed: u64) -> McResult {
    false_detection_with_workers(n, p, trials, seed, par::default_workers())
}

/// [`false_detection`] with an explicit worker count (same result for
/// any count).
pub fn false_detection_with_workers(
    n: u64,
    p: f64,
    trials: u64,
    seed: u64,
    workers: usize,
) -> McResult {
    assert!(n >= 2, "a cluster needs the CH and the judged member");
    let v = (1.0, 0.0);
    estimate(trials, seed, workers, move |rng| {
        let k = (0..n - 2)
            .filter(|_| dist2(sample_in_disk(rng), v) <= 1.0)
            .count() as i32;
        p * p * (p * (2.0 - p)).powi(k)
    })
}

/// Direct MC for Figure 5: draw every Bernoulli loss and count the
/// event `C1 ∧ C2`. Only meaningful where the probability is
/// observable (high `p`, low `N`).
pub fn false_detection_direct(n: u64, p: f64, trials: u64, seed: u64) -> McResult {
    false_detection_direct_with_workers(n, p, trials, seed, par::default_workers())
}

/// [`false_detection_direct`] with an explicit worker count.
pub fn false_detection_direct_with_workers(
    n: u64,
    p: f64,
    trials: u64,
    seed: u64,
    workers: usize,
) -> McResult {
    assert!(n >= 2, "a cluster needs the CH and the judged member");
    let v = (1.0, 0.0);
    estimate(trials, seed, workers, move |rng| {
        // C1: heartbeat and digest from v both lost to the CH.
        if !(rng.random_bool(p) && rng.random_bool(p)) {
            return 0.0;
        }
        // C2: no in-range neighbour both overheard v and delivered
        // its digest to the CH.
        for _ in 0..n - 2 {
            let w = sample_in_disk(rng);
            if dist2(w, v) <= 1.0 && rng.random_bool(1.0 - p) && rng.random_bool(1.0 - p) {
                return 0.0;
            }
        }
        1.0
    })
}

/// Conditional MC for Figure 6's `P(False detection on CH)` with the
/// deputy displaced by `d_over_r` from the centre: members relay only
/// when they fall inside the deputy's range.
pub fn ch_false_detection(n: u64, p: f64, d_over_r: f64, trials: u64, seed: u64) -> McResult {
    ch_false_detection_with_workers(n, p, d_over_r, trials, seed, par::default_workers())
}

/// [`ch_false_detection`] with an explicit worker count.
pub fn ch_false_detection_with_workers(
    n: u64,
    p: f64,
    d_over_r: f64,
    trials: u64,
    seed: u64,
    workers: usize,
) -> McResult {
    assert!(n >= 2, "a cluster needs the CH and the DCH");
    let dch = (d_over_r, 0.0);
    let relay_fail_in_range = 1.0 - (1.0 - p) * (1.0 - p);
    estimate(trials, seed, workers, move |rng| {
        let mut value = p.powi(3);
        for _ in 0..n - 2 {
            let w = sample_in_disk(rng);
            value *= if dist2(w, dch) <= 1.0 {
                relay_fail_in_range
            } else {
                1.0
            };
        }
        value
    })
}

/// Conditional MC for Figure 7's `P̂(Incompleteness)`: the recovering
/// member on the circumference; per in-range neighbour failure
/// `1−(1−p)³`.
pub fn incompleteness(n: u64, p: f64, trials: u64, seed: u64) -> McResult {
    incompleteness_with_workers(n, p, trials, seed, par::default_workers())
}

/// [`incompleteness`] with an explicit worker count.
pub fn incompleteness_with_workers(
    n: u64,
    p: f64,
    trials: u64,
    seed: u64,
    workers: usize,
) -> McResult {
    assert!(n >= 2, "a cluster needs the CH and the member");
    let v = (1.0, 0.0);
    let neighbor_fails = 1.0 - (1.0 - p).powi(3);
    estimate(trials, seed, workers, move |rng| {
        let k = (0..n - 2)
            .filter(|_| dist2(sample_in_disk(rng), v) <= 1.0)
            .count() as i32;
        p * neighbor_fails.powi(k)
    })
}

/// Geometric MC for the DCH-reachability study (E4): deputy at
/// `(d_dch, 0)`, out-of-range member at `(−d_v, 0)`; each of the
/// `N−3` other members relays iff within range of both, succeeding
/// with probability `(1−p)²`.
pub fn dch_reach_miss(n: u64, p: f64, d_dch: f64, d_v: f64, trials: u64, seed: u64) -> McResult {
    dch_reach_miss_with_workers(n, p, d_dch, d_v, trials, seed, par::default_workers())
}

/// [`dch_reach_miss`] with an explicit worker count.
pub fn dch_reach_miss_with_workers(
    n: u64,
    p: f64,
    d_dch: f64,
    d_v: f64,
    trials: u64,
    seed: u64,
    workers: usize,
) -> McResult {
    assert!(n >= 3, "needs the CH, the DCH, and the member");
    let dch = (d_dch, 0.0);
    let v = (-d_v, 0.0);
    let relay_success = (1.0 - p) * (1.0 - p);
    estimate(trials, seed, workers, move |rng| {
        let mut miss = 1.0;
        for _ in 0..n - 3 {
            let w = sample_in_disk(rng);
            if dist2(w, dch) <= 1.0 && dist2(w, v) <= 1.0 {
                miss *= 1.0 - relay_success;
            }
        }
        miss
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ch_false_detection, dch_reach, false_detection as fd, incompleteness as inc};

    const TRIALS: u64 = 20_000;

    #[test]
    fn conditional_mc_matches_fig5_closed_form() {
        // Low p makes the per-placement value heavy-tailed (the mean
        // is dominated by rare low-k placements), so the statistical
        // check runs where the estimator is well-conditioned.
        for &(n, p) in &[(50u64, 0.5), (75, 0.5), (100, 0.4)] {
            let mc = false_detection(n, p, 50_000, 7);
            let analytic = fd::worst_case(n, p);
            assert!(
                mc.agrees_with(analytic, 4.0),
                "n={n} p={p}: mc {} ± {} vs {analytic}",
                mc.mean,
                mc.std_error
            );
        }
    }

    #[test]
    fn direct_mc_matches_fig5_at_observable_corner() {
        // P̂ ≈ 2e-3 at N=50, p=0.5 — observable with 4e5 draws.
        let p = 0.5;
        let n = 50;
        let mc = false_detection_direct(n, p, 400_000, 11);
        let analytic = fd::worst_case(n, p);
        assert!(
            mc.agrees_with(analytic, 4.0),
            "mc {} ± {} vs {analytic}",
            mc.mean,
            mc.std_error
        );
    }

    #[test]
    fn conditional_mc_matches_fig6_closed_form() {
        let mc = ch_false_detection(50, 0.5, 0.0, TRIALS, 13);
        let analytic = ch_false_detection::probability(50, 0.5);
        // d = 0: every member is in range, zero variance expected.
        assert!((mc.mean - analytic).abs() / analytic < 1e-9);

        let mc = ch_false_detection(50, 0.5, 0.6, TRIALS, 13);
        let analytic = ch_false_detection::probability_at_distance(50, 0.5, 0.6);
        assert!(
            mc.agrees_with(analytic, 4.0),
            "mc {} ± {} vs {analytic}",
            mc.mean,
            mc.std_error
        );
    }

    #[test]
    fn conditional_mc_matches_fig7_closed_form() {
        for &(n, p) in &[(50u64, 0.5), (100, 0.4)] {
            let mc = incompleteness(n, p, 50_000, 17);
            let analytic = inc::worst_case(n, p);
            assert!(
                mc.agrees_with(analytic, 4.0),
                "n={n} p={p}: mc {} ± {} vs {analytic}",
                mc.mean,
                mc.std_error
            );
        }
    }

    #[test]
    fn dch_reach_mc_close_to_lens_model() {
        // The closed form approximates Ag by an unclipped lens; the MC
        // is exact, so allow a loose (but telling) agreement band.
        let mc = dch_reach_miss(75, 0.3, 0.5, 1.0, TRIALS, 23);
        let analytic = dch_reach::miss_probability(75, 0.3, 0.5, 1.0);
        let ratio = mc.mean / analytic;
        assert!(
            (0.2..5.0).contains(&ratio),
            "mc {} vs lens model {analytic}",
            mc.mean
        );
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let a = false_detection(50, 0.3, 1_000, 5);
        let b = false_detection(50, 0.3, 1_000, 5);
        assert_eq!(a, b);
        let c = false_detection(50, 0.3, 1_000, 6);
        assert_ne!(a.mean, c.mean);
    }

    #[test]
    fn summarize_handles_constants() {
        let r = summarize([2.0, 2.0, 2.0].into_iter());
        assert_eq!(r.mean, 2.0);
        assert_eq!(r.std_error, 0.0);
        assert_eq!(r.trials, 3);
    }

    #[test]
    fn welford_merge_matches_single_stream_statistically() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.1).collect();
        let mut whole = Welford::default();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::default();
        let mut right = Welford::default();
        for &x in &xs[..397] {
            left.push(x);
        }
        for &x in &xs[397..] {
            right.push(x);
        }
        let merged = left.merge(right).result();
        let whole = whole.result();
        assert_eq!(merged.trials, whole.trials);
        assert!((merged.mean - whole.mean).abs() < 1e-12);
        assert!((merged.std_error - whole.std_error).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_with_empty_is_identity() {
        let mut acc = Welford::default();
        acc.push(3.0);
        acc.push(5.0);
        assert_eq!(acc.merge(Welford::default()), acc);
        assert_eq!(Welford::default().merge(acc), acc);
    }

    #[test]
    fn estimates_are_worker_count_invariant() {
        // 3 shards' worth of trials so the merge path is exercised.
        let trials = SHARD_SIZE * 2 + 1_000;
        let base = false_detection_with_workers(50, 0.3, trials, 9, 1);
        for workers in [2usize, 3, 8] {
            assert_eq!(
                base,
                false_detection_with_workers(50, 0.3, trials, 9, workers)
            );
        }
    }
}
