//! No-op `Serialize`/`Deserialize` derives for the vendored serde
//! stand-in: they parse just enough of the item to find its name and
//! emit an empty marker-trait impl. Generic items are supported for
//! plain type/lifetime parameters (no bounds), which covers every
//! derive site in the workspace.

use proc_macro::{TokenStream, TokenTree};

/// The name and generics of the item a derive is attached to.
struct ItemHead {
    name: String,
    /// Generic parameter names verbatim, e.g. `["'a", "T"]`.
    generics: Vec<String>,
}

fn parse_head(input: TokenStream) -> ItemHead {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility/qualifier keywords
    // until the `struct`/`enum`/`union` keyword.
    while let Some(tree) = iter.next() {
        match tree {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the following bracket group.
                let _ = iter.next();
            }
            TokenTree::Ident(id)
                if matches!(id.to_string().as_str(), "struct" | "enum" | "union") =>
            {
                break;
            }
            // `pub`, `pub(crate)` groups, `r#...` idents: skip.
            _ => {}
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, found {other:?}"),
    };
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1usize;
            let mut current = String::new();
            for tree in iter.by_ref() {
                match &tree {
                    TokenTree::Punct(p) if p.as_char() == '<' => {
                        depth += 1;
                        current.push('<');
                    }
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                        current.push('>');
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        generics.push(std::mem::take(&mut current));
                    }
                    other => current.push_str(&other.to_string()),
                }
            }
            if !current.is_empty() {
                generics.push(current);
            }
            for g in &generics {
                assert!(
                    !g.contains(':') && !g.contains('='),
                    "vendored serde_derive supports only plain generic parameters, got `{g}`"
                );
            }
        }
    }
    ItemHead { name, generics }
}

fn param_list(head: &ItemHead) -> (String, String) {
    if head.generics.is_empty() {
        return (String::new(), String::new());
    }
    let list = head.generics.join(", ");
    (format!("<{list}>"), format!("<{list}>"))
}

/// Emits `impl serde::Serialize for <item> {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let head = parse_head(input);
    let (impl_generics, ty_generics) = param_list(&head);
    format!(
        "impl{impl_generics} ::serde::Serialize for {}{ty_generics} {{}}",
        head.name
    )
    .parse()
    .expect("valid impl block")
}

/// Emits `impl<'de> serde::Deserialize<'de> for <item> {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let head = parse_head(input);
    let lifetime = "'de";
    let params: Vec<String> = std::iter::once(lifetime.to_string())
        .chain(head.generics.iter().cloned())
        .collect();
    let impl_generics = format!("<{}>", params.join(", "));
    let ty_generics = if head.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", head.generics.join(", "))
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize<{lifetime}> for {}{ty_generics} {{}}",
        head.name
    )
    .parse()
    .expect("valid impl block")
}
