//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment cannot reach a crate registry, so the
//! workspace vendors the small slice of the `rand` API it actually
//! uses: a dyn-safe [`Rng`] core trait, the [`RngExt`] extension with
//! `random_range`/`random_bool`, [`SeedableRng`], and a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64).
//!
//! Determinism contract: for a given seed, the byte stream is stable
//! across platforms and releases of this workspace. Experiment
//! reproducibility relies on it.

/// Dyn-safe random source: everything derives from `next_u64`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unit-interval f64 in `[0, 1)` with 53 random bits.
#[inline]
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `draw % span`, computed in `u64` when `span` fits (`u128` division
/// lowers to a libcall; the result is identical either way because the
/// dividend is always a `u64`).
#[inline]
fn narrow_mod(draw: u64, span: u128) -> u128 {
    if let Ok(s) = u64::try_from(span) {
        u128::from(draw % s)
    } else {
        u128::from(draw) % span
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = narrow_mod(rng.next_u64(), span) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = narrow_mod(rng.next_u64(), span) as $t;
                start.wrapping_add(draw)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                start + (end - start) * unit_f64(rng) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience methods over any [`Rng`], including `dyn Rng`.
pub trait RngExt: Rng {
    /// Uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }

    /// A uniformly random value of a primitive type.
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types constructible from raw random bits (used by [`RngExt::random`]).
pub trait FromRandom {
    /// Builds a uniformly distributed value.
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for bool {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Seed type (32 bytes for [`rngs::StdRng`]).
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64` (expanded via
    /// SplitMix64, the standard seeding scheme).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// One round of the SplitMix64 mixer (seeding only).
    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard deterministic generator:
    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The raw xoshiro256++ state, for checkpointing. Restoring it
        /// with [`StdRng::from_state`] continues the byte stream exactly
        /// where it left off.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`].
        ///
        /// The all-zero state (unreachable from any seeding path) is
        /// remapped the same way [`SeedableRng::from_seed`] remaps it,
        /// so a corrupted snapshot cannot wedge the generator.
        #[inline]
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start from the all-zero state.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The all-zero state is remapped, never fixed at zero.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn works_through_dyn_rng() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynamic: &mut dyn Rng = &mut rng;
        let _ = dynamic.next_u64();
        assert!(dynamic.random_bool(1.0));
    }
}
