//! Offline vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data
//! types to keep the wire-format door open, but nothing serializes
//! through serde yet (the codec in `cbfd-core::message` is
//! hand-rolled). Until a real serialization workload lands, the traits
//! are markers and the derives are no-ops, which keeps the offline
//! build self-contained.

/// Marker for types that could be serialized.
pub trait Serialize {}

/// Marker for types that could be deserialized.
pub trait Deserialize<'de>: Sized {}

/// Marker for owned deserialization (mirrors serde's blanket rule).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
