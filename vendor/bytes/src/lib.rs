//! Offline vendored stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace's wire codec uses: [`Bytes`]
//! (cheaply cloneable, sliceable, reference-counted), [`BytesMut`]
//! (an append buffer), and the big-endian [`Buf`]/[`BufMut`] accessor
//! traits. Semantics match the real crate for this subset: `get_*`
//! panics when the buffer is short (callers check `remaining()`
//! first), `slice` panics on out-of-range indices.

use std::ops::RangeBounds;
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static slice without copying semantics concerns.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Returns a slice of self for the provided range; shares the
    /// underlying storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

/// Read access to a byte buffer, big-endian accessors.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed contents.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is exhausted (check `remaining()` first).
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

/// Append access to a byte buffer, big-endian accessors.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u16(0xCDEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_i32(-7);
        buf.put_i64(-9_000_000_000);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 2 + 4 + 8 + 4 + 8);
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16(), 0xCDEF);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(b.get_i32(), -7);
        assert_eq!(b.get_i64(), -9_000_000_000);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slices_share_storage_and_bound_check() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(b.len(), 5, "parent unchanged");
        let nested = s.slice(1..);
        assert_eq!(nested.as_slice(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_rejects_overrun() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let b = Bytes::from(vec![9; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
