//! Offline vendored mini-proptest.
//!
//! A deterministic, shrinking-free property-testing kernel exposing
//! the slice of the real proptest API this workspace uses:
//!
//! * [`Strategy`] with `prop_map`, ranges over primitive numerics,
//!   tuples up to arity 10, [`Just`], [`arbitrary::any`],
//!   [`collection::vec`], [`option::of`], and `prop_oneof!` unions;
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`) and the
//!   `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!` family;
//! * [`test_runner::Config`] (`ProptestConfig` in the prelude).
//!
//! Each test case draws from an RNG seeded by the test name and case
//! index, so failures reproduce exactly on re-run: there is no
//! persistence file and no shrinking — the failing case prints its
//! case number and the assertion message instead.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Runner configuration and the per-test RNG.

    use super::*;

    /// How many cases each property runs (default 256, like proptest).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Seeds from the property name and case index so every case
        /// is reproducible without a persistence file.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case)),
            }
        }
    }

    /// Prints the failing case number if the property panics.
    pub struct CaseReporter<'a> {
        pub test_name: &'a str,
        pub case: u32,
    }

    impl Drop for CaseReporter<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest: property `{}` failed at case {} \
                     (deterministic; re-running the test reproduces it)",
                    self.test_name, self.case
                );
            }
        }
    }
}

use test_runner::TestRng;

/// A generator of test values.
///
/// Unlike real proptest there is no shrinking: `Value`s are produced
/// directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use super::*;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    use rand::Rng;
                    rng.rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::Rng;
            rng.rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::RngExt;
            rng.rng.random_range(-1.0e9..1.0e9)
        }
    }

    /// Strategy for [`Arbitrary`] types.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::*;

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::RngExt;
            let len = rng.rng.random_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len_range)` — a `Vec` with length drawn from the
    /// range and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::*;

    /// Strategy producing `Option`s of values from `inner`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            use rand::RngExt;
            if rng.rng.random_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `of(inner)` — `Some` three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// A uniform union of same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `variants` is empty.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::RngExt;
        let idx = rng.rng.random_range(0..self.variants.len());
        self.variants[idx].generate(rng)
    }
}

/// Uniformly chooses among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn holds(x in 0u64..100, ys in proptest::collection::vec(0i32..9, 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                let reporter = $crate::test_runner::CaseReporter {
                    test_name: stringify!($name),
                    case,
                };
                let ($($arg,)+) = ($($crate::Strategy::generate(&$strategy, &mut rng),)+);
                { $body }
                drop(reporter);
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 3u64..10, (a, b) in (0.0f64..1.0, -5i32..=5)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((-5..=5).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..=255, 2..7)) {
            prop_assert!((2..7).contains(&v.len()), "{}", v.len());
        }

        #[test]
        fn oneof_covers_all_arms(x in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn map_applies(y in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!(y < 20);
        }

        #[test]
        fn options_mix(o in crate::option::of(0u8..10)) {
            if let Some(v) = o {
                prop_assert!(v < 10);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let strat = (0u64..1_000_000, 0.0f64..1.0);
        let a = strat.generate(&mut TestRng::for_case("det", 5));
        let b = strat.generate(&mut TestRng::for_case("det", 5));
        assert_eq!(a, b);
        let c = strat.generate(&mut TestRng::for_case("det", 6));
        assert_ne!(a, c);
    }
}
