//! Offline vendored stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop: a calibration pass sizes the batch,
//! then `sample_size` batches are timed and the median ns/iteration is
//! printed. No statistics machinery, no HTML reports.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named benchmark parameterization.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    batch: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it in calibrated batches.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: grow the batch until one batch takes >= 1 ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.batch = batch;
        let samples = self.samples.capacity().max(1);
        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() || self.batch == 0 {
            return f64::NAN;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        ns[ns.len() / 2] as f64 / self.batch as f64
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        batch: 0,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    println!("{label:<50} {:>12.1} ns/iter", b.median_ns_per_iter());
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored (compatibility shim).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing already happened per bench).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Compatibility shim: CLI filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), 10, f);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_produces_a_number() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }
}
