//! Validates the closed-form analysis of Section 5 against the
//! protocol-level simulation: the same geometry (one cluster disk,
//! clusterhead at the centre, members uniform), the same channel, the
//! measures observed rather than computed.

use cbfd::analysis::{false_detection, incompleteness};
use cbfd::cluster::FormationConfig;
use cbfd::core::config::FdsConfig;
use cbfd::core::service::Experiment;
use cbfd::prelude::*;

/// One cluster exactly as the analysis assumes: the clusterhead (node
/// 0, lowest ID) at the centre of a disk of radius `R = 100 m`, the
/// other `n − 1` members uniformly distributed inside it.
fn analysis_cluster(n: usize, seed: u64) -> Topology {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let center = Point::new(0.0, 0.0);
    let mut positions = vec![center];
    positions.extend(
        Placement::UniformDisk {
            center,
            radius: 100.0,
        }
        .generate(n - 1, &mut rng),
    );
    Topology::from_positions(positions, 100.0)
}

fn single_cluster_experiment(n: usize, seed: u64, fds: FdsConfig) -> Experiment {
    let topology = analysis_cluster(n, seed);
    let experiment = Experiment::new(topology, fds, FormationConfig::default());
    assert_eq!(
        experiment.view().cluster_count(),
        1,
        "the disk must form exactly one cluster"
    );
    experiment
}

#[test]
fn simulated_incompleteness_matches_average_case_analysis() {
    // Figure 7's protocol-level counterpart: the empirical rate of
    // "member ends the epoch without the health update, even after
    // peer forwarding" should land near the position-averaged closed
    // form (the paper's figure is the circumference upper bound).
    // Promiscuous recovery is disabled because the model considers
    // each requester's own exchange only; with it on, overheard
    // forwards make the protocol strictly better than the bound
    // (checked at the end).
    let n = 50;
    let p = 0.4;
    let epochs = 60;
    let strict = FdsConfig {
        promiscuous_recovery: false,
        ..FdsConfig::default()
    };
    let mut misses = 0u64;
    let mut member_epochs = 0u64;
    for seed in 0..12 {
        let experiment = single_cluster_experiment(n, 1_000 + seed, strict);
        let outcome = experiment.run(p, epochs, &[], seed);
        misses += outcome.update_misses;
        member_epochs += outcome.member_epochs;
    }
    let rate = misses as f64 / member_epochs as f64;
    let avg = incompleteness::average_case(n as u64, p);
    let worst = incompleteness::worst_case(n as u64, p);
    assert!(
        rate <= worst * 1.5,
        "simulated rate {rate} should not exceed the worst-case bound {worst}"
    );
    assert!(
        rate >= avg / 5.0 && rate <= avg * 5.0,
        "simulated rate {rate} vs average-case analysis {avg} (worst {worst})"
    );

    // Promiscuous recovery only improves things.
    let experiment = single_cluster_experiment(n, 1_000, FdsConfig::default());
    let outcome = experiment.run(p, epochs, &[], 0);
    assert!(
        outcome.incompleteness_rate() <= rate + 1e-9,
        "overhearing must not hurt: {} vs {rate}",
        outcome.incompleteness_rate()
    );
}

#[test]
fn simulated_false_detection_rate_matches_analysis() {
    // Figure 5's protocol-level counterpart at the observable corner:
    // small cluster, heavy loss, many independent one-epoch runs.
    let n = 30;
    let p = 0.5;
    let runs = 220;
    let mut events = 0u64;
    let mut member_epochs = 0u64;
    for seed in 0..runs {
        let experiment = single_cluster_experiment(n, 5_000 + seed, FdsConfig::default());
        let outcome = experiment.run(p, 1, &[], seed);
        events += outcome.false_detections.len() as u64;
        member_epochs += (n as u64) - 1;
    }
    let rate = events as f64 / member_epochs as f64;
    let avg = false_detection::average_case(n as u64, p);
    let worst = false_detection::worst_case(n as u64, p);
    // Poisson noise over ~events: accept a generous band around the
    // average-case prediction, and never exceed the worst case much.
    assert!(
        rate <= worst * 2.0,
        "rate {rate} should respect the worst-case bound {worst}"
    );
    assert!(
        rate >= avg / 6.0 && rate <= avg * 6.0,
        "rate {rate} vs average-case analysis {avg} ({events} events)"
    );
}

#[test]
fn digest_round_ablation_shows_the_redundancy_value() {
    // Without fds.R-2 the detector loses its time/spatial redundancy:
    // a member is falsely detected whenever its single heartbeat is
    // lost (probability p per epoch). With digests the rate collapses.
    let n = 30;
    let p = 0.3;
    let runs = 30;
    let mut with_digests = 0u64;
    let mut without_digests = 0u64;
    for seed in 0..runs {
        let on = single_cluster_experiment(n, 9_000 + seed, FdsConfig::default());
        with_digests += on.run(p, 1, &[], seed).false_detections.len() as u64;
        let off_config = FdsConfig {
            digest_round: false,
            ..FdsConfig::default()
        };
        let off = single_cluster_experiment(n, 9_000 + seed, off_config);
        without_digests += off.run(p, 1, &[], seed).false_detections.len() as u64;
    }
    // Without digests: ~p per member-epoch = 0.3·29·30 ≈ 260 events.
    // With digests: the average-case analysis gives ≈1e-4·870 ≈ 0.1.
    assert!(
        without_digests > 100,
        "naive heartbeat detector should misfire constantly, got {without_digests}"
    );
    assert!(
        with_digests < without_digests / 20,
        "digest redundancy should slash false detections: {with_digests} vs {without_digests}"
    );
}

#[test]
fn peer_forwarding_ablation_shows_the_recovery_value() {
    let n = 40;
    let p = 0.3;
    let epochs = 40;
    let run_with = |peer: bool, seed: u64| {
        let config = FdsConfig {
            peer_forwarding: peer,
            ..FdsConfig::default()
        };
        let experiment = single_cluster_experiment(n, 13_000 + seed, config);
        let outcome = experiment.run(p, epochs, &[], seed);
        outcome.incompleteness_rate()
    };
    let with_pf: f64 = (0..6).map(|s| run_with(true, s)).sum::<f64>() / 6.0;
    let without_pf: f64 = (0..6).map(|s| run_with(false, s)).sum::<f64>() / 6.0;
    // Without recovery the miss rate is p; with it, orders less.
    assert!(
        (without_pf - p).abs() < 0.1,
        "without peer forwarding the miss rate should be ≈p, got {without_pf}"
    );
    assert!(
        with_pf < without_pf / 10.0,
        "peer forwarding should slash misses: {with_pf} vs {without_pf}"
    );
}

#[test]
fn geometry_modules_agree_across_crates() {
    // The analysis crate's self-contained lens math must match the
    // simulator's geometry module.
    for i in 0..=10 {
        let d = i as f64 * 20.0;
        let from_net = cbfd::net::geometry::disk_lens_area(100.0, d);
        let from_analysis = cbfd::analysis::geometry::lens_area(100.0, d);
        assert!(
            (from_net - from_analysis).abs() < 1e-9,
            "lens area mismatch at d = {d}"
        );
    }
    let a = cbfd::net::geometry::neighborhood_fraction(100.0, 100.0);
    let b = cbfd::analysis::geometry::worst_case_an_fraction();
    assert!((a - b).abs() < 1e-12);
}

#[test]
fn system_model_lower_bounds_protocol_completeness() {
    // E7: compose the per-cluster measures over the real backbone of a
    // formed field and compare with the protocol. The closed-form
    // model allows each report one bounded dissemination wave, while
    // the protocol keeps retrying across epochs, so the measured
    // completeness must dominate the model's prediction.
    use cbfd::analysis::system::SystemModel;
    use std::collections::BTreeMap;

    // Seed chosen so the sampled field is fully connected (one
    // backbone component) under the vendored generator.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let positions = Placement::UniformRect(Rect::square(600.0)).generate(180, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);
    let experiment = Experiment::new(topology, FdsConfig::default(), FormationConfig::default());
    let view = experiment.view();
    assert_eq!(view.backbone_components().len(), 1);

    // Build the cluster-graph model from the formed view.
    let index: BTreeMap<_, _> = view
        .clusters()
        .enumerate()
        .map(|(i, c)| (c.id(), i))
        .collect();
    let p = 0.35;
    let model = SystemModel {
        populations: view.clusters().map(|c| c.len() as u64).collect(),
        links: view
            .gateway_links()
            .map(|(pair, link)| {
                let (a, b) = pair.endpoints();
                (index[&a], index[&b], link.backups.len() as u32)
            })
            .collect(),
        p,
        attempts: 2,
        retx: 2,
    };

    let victim = experiment
        .view()
        .clusters()
        .flat_map(|c| c.non_head_members().collect::<Vec<_>>())
        .next()
        .unwrap();
    let origin = index[&view.cluster_of(victim).unwrap()];
    let predicted = model.informed_fraction(origin, 3_000, 7).mean;

    let mut measured = 0.0;
    let runs = 5;
    for seed in 0..runs {
        let outcome = experiment.run(
            p,
            8,
            &[PlannedCrash {
                epoch: 1,
                node: victim,
            }],
            seed,
        );
        measured += outcome.completeness;
    }
    measured /= runs as f64;
    assert!(
        measured >= predicted - 0.05,
        "protocol {measured:.3} must dominate the one-wave model {predicted:.3}"
    );
    assert!(
        predicted > 0.5,
        "sanity: the model should predict substantial coverage, got {predicted:.3}"
    );
}

#[test]
fn byte_accounting_tracks_message_sizes() {
    let exp = single_cluster_experiment(20, 21_000, FdsConfig::default());
    let outcome = exp.run(0.0, 3, &[], 0);
    // Every transmission carries at least a heartbeat-sized payload.
    assert!(outcome.bytes >= outcome.metrics.transmissions * 6);
    // Aggregation adds bytes but not messages.
    let agg = single_cluster_experiment(
        20,
        21_000,
        FdsConfig {
            aggregation: true,
            ..FdsConfig::default()
        },
    );
    let with_agg = agg.run(0.0, 3, &[], 0);
    assert_eq!(
        with_agg.metrics.transmissions,
        outcome.metrics.transmissions
    );
    assert!(
        with_agg.bytes > outcome.bytes,
        "piggybacked readings must show up in the byte count"
    );
}

#[test]
fn burst_loss_sensitivity_stays_within_a_factor_of_two() {
    // Sensitivity beyond the paper's i.i.d. channel: a Gilbert–Elliott
    // channel with the same long-run loss rate correlates losses in
    // time. One might expect this to hurt (a member's heartbeat and
    // digest die together on a bursty link), but the FDS's redundancy
    // spans *many independent links* — every neighbour is a separate
    // channel — so temporal correlation on any one link barely moves
    // the outcome. The study pins that robustness: equal-average burst
    // and i.i.d. channels give miss rates within 2× of each other.
    use cbfd::net::loss::GilbertElliott;

    let n = 40;
    let epochs = 50;
    // Stationary loss ≈ 0.4: good state 0.1, bad state 0.85, with
    // pi_bad = 0.4.
    let make_burst = || GilbertElliott::new(0.1, 0.85, 0.2, 0.3);
    assert!((make_burst().stationary_loss() - 0.4).abs() < 0.01);

    // Strict per-requester recovery so misses are observable at all.
    let strict = FdsConfig {
        promiscuous_recovery: false,
        ..FdsConfig::default()
    };
    let mut iid_misses = 0;
    let mut burst_misses = 0;
    for seed in 0..8 {
        let exp = single_cluster_experiment(n, 30_000 + seed, strict);
        iid_misses += exp.run(0.4, epochs, &[], seed).update_misses;
        let burst_radio = RadioConfig::new(Box::new(make_burst()));
        burst_misses += exp
            .run_full(burst_radio, epochs, &[], &[], seed)
            .update_misses;
    }
    assert!(iid_misses > 0, "the strict setting must produce misses");
    let ratio = burst_misses as f64 / iid_misses as f64;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "burst vs i.i.d. miss ratio out of band: {burst_misses} vs {iid_misses}"
    );
}

#[test]
fn dissemination_latency_grows_with_backbone_distance() {
    // The latency model (cbfd-analysis::latency): a report crosses one
    // backbone link per interval with probability q, so clusters
    // farther from the origin learn later. Measure the per-node
    // learning epochs on a chain of clusters and check the gradient
    // and the model's confidence bound.
    use cbfd::analysis::latency;
    use cbfd::core::node::FdsNode;
    use cbfd::core::profile::build_profiles;
    use cbfd::net::sim::Simulator;

    // A 16-node line with 45 m spacing: a chain of clusters.
    let positions: Vec<Point> = (0..16).map(|i| Point::new(i as f64 * 45.0, 0.0)).collect();
    let topology = Topology::from_positions(positions, 100.0);
    let view = cbfd::cluster::oracle::form(&topology, &FormationConfig::default());
    assert!(view.cluster_count() >= 3, "need a chain of clusters");
    let profiles = build_profiles(&view);
    let config = FdsConfig::default();
    // The victim must be an ordinary member (a singleton clusterhead
    // at the chain's end would die unjudged): pick the last cluster
    // with members and crash one of them.
    let victim = view
        .clusters()
        .filter_map(|c| c.non_head_members().last())
        .last()
        .unwrap();
    let victim_cluster = view.cluster_of(victim).unwrap();

    let p = 0.3;
    let mut sim = Simulator::new(topology.clone(), RadioConfig::bernoulli(p), 3, |id| {
        FdsNode::new(profiles[id.index()].clone(), config, 1_000.0)
    });
    sim.schedule_crash(
        victim,
        SimTime::from_millis(1_500), // mid-epoch 1
    );
    sim.run_until(SimTime::from_secs(12) - SimDuration::from_micros(1));

    // Learning epoch per node, grouped by backbone distance from the
    // victim's cluster.
    let mut by_distance: std::collections::BTreeMap<usize, Vec<u64>> = Default::default();
    for (id, node) in sim.actors() {
        if id == victim {
            continue;
        }
        let Some(cid) = view.cluster_of(id) else {
            continue;
        };
        let hops = view
            .backbone_route(victim_cluster, cid)
            .map(|r| r.len() - 1)
            .expect("chain backbone is connected");
        let learned = node
            .known_failed()
            .known_since(victim)
            .unwrap_or_else(|| panic!("{id} never learned about {victim}"));
        by_distance.entry(hops).or_default().push(learned);
    }
    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
    let near = mean(&by_distance[&0]);
    let far_distance = *by_distance.keys().max().unwrap();
    let far = mean(&by_distance[&far_distance]);
    assert!(
        far >= near,
        "distance must not shorten latency: {near} vs {far}"
    );

    // The model's planning bound: with the protocol's retries the
    // per-interval link success at p = 0.3 is nearly 1, so even the
    // farthest cluster should know within detection (2 epochs) plus
    // the 99.9% dissemination bound.
    let q = latency::link_success_per_interval(p, 0, 3, 2);
    let bound = 2 + latency::intervals_for_confidence(far_distance as u32, q, 0.999) as u64;
    let worst = by_distance[&far_distance].iter().copied().max().unwrap();
    assert!(
        worst <= bound,
        "worst learning epoch {worst} beyond the model bound {bound}"
    );
}
