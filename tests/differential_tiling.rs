//! Tile-count-invariance differential suite: the spatially tiled
//! engine against the single-queue canonical engine, over randomized
//! full-FDS workloads with churn and chaos plans.
//!
//! Every case draws a random geometry and a random [`FaultPlan`]
//! (crashes, cascades, loss/burst storms, partitions, delay jitter,
//! link lag, replay, and — on even cases — join/leave/rejoin churn),
//! then runs the identical plan through [`CanonicalSim`] and through
//! [`TiledSim`] at tile grids 1×1, 2×2, and ~1-node-per-tile ("max"),
//! with worker counts 1, 2, and 8. Everything observable must be
//! byte-identical across every engine × grid × worker combination:
//! the event trace, the traffic metrics, per-node remaining energy
//! (exact f64 bits), the FDS verdict (false detections, missed
//! failures, completeness, detection latencies), and both wire-byte
//! ledgers (bitmap and id-list shadow).
//!
//! This is the determinism-contract extension of DESIGN.md §14: the
//! spatial partition and the thread schedule are pure execution
//! details, invisible in the output.

use cbfd::cluster::FormationConfig;
use cbfd::core::config::{DetectionMode, FdsConfig};
use cbfd::core::node::FdsNode;
use cbfd::core::service::Experiment;
use cbfd::net::chaos::{FaultPlan, PlanConfig};
use cbfd::net::tiled::{suggested_grid, CanonicalSim, TiledSim};
use cbfd::net::trace::TraceRecord;
use cbfd::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Everything a run exposes, in comparable form. Outcome and node
/// state are compared via their `Debug` rendering (injective for the
/// finite floats involved); energy as exact bit patterns.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    trace: Vec<TraceRecord>,
    energy_bits: Vec<u64>,
    outcome: String,
    nodes: Vec<String>,
}

fn node_summary(id: NodeId, node: &FdsNode) -> String {
    format!(
        "{id} epoch={} head={:?} failed={:?} detections={:?} suspicions={:?} stats={:?}",
        node.epoch(),
        node.acting_head(),
        node.known_failed(),
        node.detections(),
        node.suspicion_events(),
        node.stats(),
    )
}

/// One randomized workload: an experiment plus the fault plan driven
/// through it.
struct Workload {
    exp: Experiment,
    plan: FaultPlan,
    epochs: u64,
    seed: u64,
    n: usize,
}

fn make_workload(case: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(0x71D3_C0DE ^ (case.wrapping_mul(0x9E37_79B9)));
    let n = rng.random_range(8usize..40);
    let side = rng.random_range(250.0..500.0);
    let positions = (0..n)
        .map(|_| Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
        .collect();
    let topology = Topology::from_positions(positions, 100.0);
    // `case % 4 >= 2` puts the adaptive detector on both even (churn)
    // and odd (churn-free) cases, so ◇P suspicion state meets every
    // fault primitive the plan pool generates.
    let fds = FdsConfig {
        aggregation: case % 3 == 1,
        detection_mode: if case % 4 >= 2 {
            DetectionMode::Adaptive
        } else {
            DetectionMode::Fixed
        },
        ..Default::default()
    };
    let epochs = rng.random_range(4u64..8);
    let horizon = SimTime::ZERO + fds.heartbeat_interval * epochs;
    let plan = FaultPlan::generate(
        0xFA17_0000 + case,
        &PlanConfig {
            nodes: n,
            horizon,
            baseline_p: rng.random_range(0.0..0.25),
            max_primitives: 5,
            max_cascade: 4,
            churn: case.is_multiple_of(2),
        },
    );
    let exp = Experiment::new(topology, fds, FormationConfig::default());
    Workload {
        exp,
        plan,
        epochs,
        seed: 0x5EED_0000 + case,
        n,
    }
}

fn run_canonical(w: &Workload) -> Fingerprint {
    let mut sim: CanonicalSim<FdsNode> = w
        .exp
        .build_canonical_sim(RadioConfig::bernoulli(w.plan.baseline_p), w.seed);
    sim.enable_trace();
    w.exp.mark_join_targets(&mut sim, &w.plan);
    let outcome = w.exp.run_plan_on_host(&mut sim, &w.plan, w.epochs);
    Fingerprint {
        trace: sim.trace().records().to_vec(),
        energy_bits: sim
            .energy_remaining_vec()
            .iter()
            .map(|e| e.to_bits())
            .collect(),
        outcome: format!("{outcome:?}"),
        nodes: sim.actors().map(|(id, n)| node_summary(id, n)).collect(),
    }
}

fn run_tiled(w: &Workload, gx: u32, gy: u32, workers: usize) -> Fingerprint {
    let mut sim: TiledSim<FdsNode> =
        w.exp
            .build_tiled_sim(RadioConfig::bernoulli(w.plan.baseline_p), w.seed, gx, gy);
    sim.set_workers(workers);
    sim.enable_trace();
    w.exp.mark_join_targets(&mut sim, &w.plan);
    let outcome = w.exp.run_plan_on_host(&mut sim, &w.plan, w.epochs);
    Fingerprint {
        trace: sim.trace().records().to_vec(),
        energy_bits: sim
            .energy_remaining_vec()
            .iter()
            .map(|e| e.to_bits())
            .collect(),
        outcome: format!("{outcome:?}"),
        nodes: sim.actors().map(|(id, n)| node_summary(id, n)).collect(),
    }
}

fn assert_fingerprints_equal(case: u64, label: &str, a: &Fingerprint, b: &Fingerprint) {
    assert_eq!(
        a.trace.len(),
        b.trace.len(),
        "case {case} [{label}]: trace lengths diverge"
    );
    for (i, (x, y)) in a.trace.iter().zip(&b.trace).enumerate() {
        assert_eq!(x, y, "case {case} [{label}]: trace record {i} diverges");
    }
    assert_eq!(
        a.energy_bits, b.energy_bits,
        "case {case} [{label}]: energy bits diverge"
    );
    assert_eq!(
        a.outcome, b.outcome,
        "case {case} [{label}]: FDS outcome diverges"
    );
    for (i, (x, y)) in a.nodes.iter().zip(&b.nodes).enumerate() {
        assert_eq!(x, y, "case {case} [{label}]: node {i} final state diverges");
    }
}

#[test]
fn tiled_engine_is_invariant_in_grid_and_workers_on_randomized_workloads() {
    const CASES: u64 = 102;
    let mut churn_cases = 0u64;
    let mut adaptive_suspicions = 0u64;
    for case in 0..CASES {
        let w = make_workload(case);
        if w.plan.has_churn() {
            churn_cases += 1;
        }
        let canonical = run_canonical(&w);
        adaptive_suspicions += canonical
            .nodes
            .iter()
            .map(|s| s.matches("SuspicionEvent").count() as u64)
            .sum::<u64>();
        // Grids 1×1 / 2×2 / max (~1 node per tile), workers 1 / 2 / 8,
        // rotated so every grid meets every worker count across cases.
        let (mx, my) = suggested_grid(w.n, 1);
        let combos: [(u32, u32, usize); 3] = match case % 3 {
            0 => [(1, 1, 1), (2, 2, 2), (mx, my, 8)],
            1 => [(1, 1, 2), (2, 2, 8), (mx, my, 1)],
            _ => [(1, 1, 8), (2, 2, 1), (mx, my, 2)],
        };
        for (gx, gy, workers) in combos {
            let tiled = run_tiled(&w, gx, gy, workers);
            assert_fingerprints_equal(case, &format!("{gx}x{gy} w{workers}"), &canonical, &tiled);
        }
    }
    assert!(
        churn_cases >= 10,
        "workload mix lost its churn coverage ({churn_cases} cases)"
    );
    assert!(
        adaptive_suspicions > 0,
        "no adaptive case ever raised a suspicion — the ◇P path went untested"
    );
}

#[test]
fn aggregate_byte_ledgers_agree_across_engines() {
    // Beyond per-node equality (covered above), pin the aggregates the
    // paper's byte-cost tables are computed from.
    let w = make_workload(7);
    let canonical = run_canonical(&w);
    let tiled = run_tiled(&w, 3, 2, 2);
    let sum = |fp: &Fingerprint, key: &str| -> u64 {
        // NodeStats Debug renders `bytes_sent: N` / `bytes_sent_id_list: N`.
        fp.nodes
            .iter()
            .map(|s| {
                let at = s.find(key).expect("stat key present") + key.len();
                s[at..]
                    .trim_start()
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse::<u64>()
                    .expect("numeric stat")
            })
            .sum()
    };
    let bytes = sum(&canonical, "bytes_sent:");
    assert!(bytes > 0, "workload transmitted nothing");
    assert_eq!(bytes, sum(&tiled, "bytes_sent:"));
    assert_eq!(
        sum(&canonical, "bytes_sent_id_list:"),
        sum(&tiled, "bytes_sent_id_list:")
    );
}
