//! Operator health reports over real runs: completeness means the
//! operations team gets the same answer no matter which node they ask
//! (base stations "may be scattered in the field", Section 2.1).

use cbfd::cluster::{oracle, FormationConfig};
use cbfd::core::config::FdsConfig;
use cbfd::core::health::HealthReport;
use cbfd::core::node::FdsNode;
use cbfd::core::profile::build_profiles;
use cbfd::net::sim::Simulator;
use cbfd::prelude::*;

fn run_field(
    seed: u64,
    p: f64,
    epochs: u64,
    crashes: &[(u64, NodeId)],
) -> (Simulator<FdsNode>, usize) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let positions = Placement::UniformRect(Rect::square(450.0)).generate(120, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);
    let view = oracle::form(&topology, &FormationConfig::default());
    assert_eq!(view.backbone_components().len(), 1);
    let profiles = build_profiles(&view);
    let config = FdsConfig::default();
    let mut sim = Simulator::new(topology, RadioConfig::bernoulli(p), seed, |id| {
        FdsNode::new(profiles[id.index()].clone(), config, 1_000.0)
    });
    for (epoch, node) in crashes {
        sim.schedule_crash(
            *node,
            SimTime::ZERO + config.heartbeat_interval * *epoch + SimDuration::from_millis(500),
        );
    }
    sim.run_until(SimTime::ZERO + config.heartbeat_interval * epochs - SimDuration::from_micros(1));
    (sim, 120)
}

#[test]
fn every_reporter_gives_the_same_operator_view() {
    let crashes = [(1, NodeId(17)), (2, NodeId(63)), (3, NodeId(101))];
    // Seed chosen so the sampled field is fully connected under the
    // vendored generator.
    let (sim, deployed) = run_field(4, 0.1, 10, &crashes);
    let mut reports = Vec::new();
    for (id, node) in sim.actors() {
        if !sim.is_alive(id) || node.profile().cluster.is_none() {
            continue;
        }
        reports.push((id, HealthReport::from_view(node.known_failed(), deployed)));
    }
    assert!(reports.len() > 100);
    let reference = reports[0].1;
    for (id, report) in &reports {
        assert_eq!(
            report.believed_failed, reference.believed_failed,
            "reporter {id} disagrees: {report} vs {reference}"
        );
    }
    assert_eq!(reference.believed_failed, 3);
    assert_eq!(reference.operational(), deployed - 3);
}

#[test]
fn capacity_warnings_fire_consistently() {
    // Crash 10% of the field; every reporter's 8%-loss warning fires,
    // nobody's 15% warning does.
    let crashes: Vec<(u64, NodeId)> = (0..12)
        .map(|i| (1 + i % 4, NodeId(5 + 9 * i as u32)))
        .collect();
    let (sim, deployed) = run_field(7, 0.05, 12, &crashes);
    for (id, node) in sim.actors() {
        if !sim.is_alive(id) || node.profile().cluster.is_none() {
            continue;
        }
        let report = HealthReport::from_view(node.known_failed(), deployed);
        assert!(
            report.capacity_warning(0.08),
            "{id}: warning at 8% must fire ({report})"
        );
        assert!(
            !report.capacity_warning(0.15),
            "{id}: warning at 15% must not fire ({report})"
        );
    }
}
