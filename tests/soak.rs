//! Kitchen-sink soak test: every mechanism at once, over a long run.
//!
//! 250 nodes; lossy channel; aggregation embedded; several members
//! duty-cycling with announcements; crashes hitting ordinary members,
//! a deputy, a gateway, and a head; membership subscription of a late
//! arrival. The run must terminate, keep its books consistent, detect
//! every detectable crash, and stay accurate about everything that is
//! merely asleep.

use cbfd::cluster::{Cluster, ClusterView, Role};
use cbfd::core::config::FdsConfig;
use cbfd::core::service::PlannedSleep;
use cbfd::prelude::*;
use std::collections::BTreeMap;

#[test]
fn everything_at_once_long_run() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2_026);
    let n = 250;
    let positions = Placement::UniformRect(Rect::square(650.0)).generate(n, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);
    let config = FdsConfig {
        aggregation: true,
        ..FdsConfig::default()
    };
    let experiment = Experiment::new(topology, config, FormationConfig::default());
    let view = experiment.view();
    assert_eq!(
        view.backbone_components().len(),
        1,
        "need a connected field"
    );

    // Role-targeted crash plan.
    let head = view
        .clusters()
        .find(|c| c.len() >= 8 && c.deputies().len() >= 2)
        .map(|c| c.head())
        .expect("a deep cluster exists");
    let deputy = view
        .clusters()
        .filter(|c| c.head() != head)
        .find_map(|c| c.first_deputy())
        .expect("another cluster has a deputy");
    let gateway = view
        .gateway_links()
        .map(|(_, l)| l.primary)
        .find(|g| *g != deputy && *g != head)
        .expect("a gateway exists");
    let ordinary: Vec<NodeId> = view
        .clusters()
        .filter_map(|c| {
            c.non_head_members()
                .find(|m| view.role_of(*m) == Role::Ordinary)
        })
        .filter(|m| *m != deputy && *m != gateway)
        .take(3)
        .collect();

    let mut crashes = vec![
        PlannedCrash {
            epoch: 2,
            node: ordinary[0],
        },
        PlannedCrash {
            epoch: 4,
            node: gateway,
        },
        PlannedCrash {
            epoch: 6,
            node: deputy,
        },
        PlannedCrash {
            epoch: 8,
            node: head,
        },
        PlannedCrash {
            epoch: 10,
            node: ordinary[1],
        },
        PlannedCrash {
            epoch: 12,
            node: ordinary[2],
        },
    ];
    crashes.sort_by_key(|c| c.epoch);

    // Sleepers: six ordinary members napping through the middle.
    let sleepers: Vec<PlannedSleep> = view
        .clusters()
        .filter_map(|c| {
            c.non_head_members()
                .filter(|m| view.role_of(*m) == Role::Ordinary)
                .find(|m| !crashes.iter().any(|cr| cr.node == *m))
        })
        .take(6)
        .map(|node| PlannedSleep {
            node,
            from_epoch: 5,
            until_epoch: 11,
        })
        .collect();
    assert!(sleepers.len() >= 4);

    let epochs = 20;
    let outcome = experiment.run_with_sleep(0.15, epochs, &crashes, &sleepers, 2_026);

    // Every crash detected.
    for c in &crashes {
        assert!(
            outcome.detection_latency.contains_key(&c.node),
            "{} (crashed at epoch {}) undetected",
            c.node,
            c.epoch
        );
    }
    // No sleeper condemned.
    for s in &sleepers {
        assert!(
            !outcome
                .false_detections
                .iter()
                .any(|fd| fd.suspect == s.node),
            "sleeper {} was condemned: {:?}",
            s.node,
            outcome.false_detections
        );
    }
    // Books consistent.
    assert!(
        outcome.completeness > 0.97,
        "completeness {}",
        outcome.completeness
    );
    assert!(outcome.incompleteness_rate() < 0.02);
    assert!(outcome.bytes > outcome.metrics.transmissions * 6);
    assert!(outcome.metrics.delivery_ratio() > 0.8);
}

#[test]
fn late_arrival_during_chaos_is_admitted_and_informed() {
    // One cluster plus a late arrival; chaos = loss + a crash while the
    // arrival is still joining.
    let mut positions: Vec<Point> = vec![Point::new(0.0, 0.0)];
    for i in 1..12 {
        let angle = i as f64 * std::f64::consts::TAU / 11.0;
        positions.push(Point::new(75.0 * angle.cos(), 75.0 * angle.sin()));
    }
    positions.push(Point::new(20.0, -15.0)); // the unmarked arrival, id 12
    let topology = Topology::from_positions(positions, 100.0);
    let members: Vec<NodeId> = (0..12).map(NodeId).collect();
    let cluster = Cluster::new(NodeId(0), members, vec![NodeId(1), NodeId(2)]);
    let cid = cluster.id();
    let mut clusters = BTreeMap::new();
    clusters.insert(cid, cluster);
    let mut affiliation = vec![Some(cid); 12];
    affiliation.push(None);
    let view = ClusterView::from_parts(clusters, affiliation, BTreeMap::new());
    let experiment = Experiment::with_view(topology, view, FdsConfig::default());

    let outcome = experiment.run(
        0.25,
        12,
        &[PlannedCrash {
            epoch: 1,
            node: NodeId(7),
        }],
        99,
    );
    assert!(
        outcome.joins >= 1,
        "the arrival must eventually be admitted"
    );
    assert!(
        outcome.detection_latency.contains_key(&NodeId(7)),
        "the crash must be detected despite the churn"
    );
    assert!(
        !outcome
            .missed
            .iter()
            .any(|m| m.observer == NodeId(12) && m.failed == NodeId(7)),
        "the admitted arrival must learn about the earlier crash: {:?}",
        outcome.missed
    );
}
