//! Property-based tests for the tiled engine's barrier and lookahead
//! arithmetic (DESIGN.md §14): window boundary inclusivity, the
//! range-derived lookahead lower bound, cross-tile transmits landing
//! beyond the execution limit of the window that sent them, and tile
//! assignment stability under bounded mobility drift.

use cbfd::net::tiled::{lookahead_of, window_end, window_index, TileGrid};
use cbfd::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Windows are half-open `[k·W, (k+1)·W)`: an event exactly at a
    /// barrier belongs to the *next* window, and every instant falls
    /// inside the window its index names.
    #[test]
    fn window_boundaries_are_half_open(
        at in 0u64..1_000_000_000,
        w in 1u64..100_000,
    ) {
        let width = SimDuration::from_micros(w);
        let k = window_index(SimTime::from_micros(at), width);
        // Containment: k·W ≤ at < (k+1)·W.
        prop_assert!(k.saturating_mul(w) <= at);
        prop_assert!(at < window_end(k, width).as_micros());
        // Barrier inclusivity: the barrier instant itself indexes the
        // next window.
        let barrier = window_end(k, width).as_micros();
        prop_assert_eq!(window_index(SimTime::from_micros(barrier), width), k + 1);
        // A window's end is the next window's start.
        prop_assert_eq!(
            window_end(k, width).as_micros(),
            (k + 1).saturating_mul(w)
        );
    }

    /// The lookahead is the radio's base delay, and it is a true lower
    /// bound: jitter, per-link lag, and duplication lag only add
    /// latency, so every delivery lands in a strictly later window
    /// than its transmission.
    #[test]
    fn lookahead_forces_strictly_later_window(
        t in 0u64..1_000_000_000,
        delay in 1u64..50_000,
        jitter_draw in 0u64..50_000,
        link_lag in 0u64..100_000,
        dup_lag in 0u64..100_000,
    ) {
        let radio = RadioConfig::lossless()
            .with_delay(SimDuration::from_micros(delay))
            .with_jitter(SimDuration::from_micros(jitter_draw));
        let w = lookahead_of(&radio);
        prop_assert_eq!(w, SimDuration::from_micros(delay));
        // Worst case for the bound is the *minimum* added latency:
        // zero jitter, zero lag. Any extras push further out.
        for extra in [0, jitter_draw + link_lag, jitter_draw + link_lag + dup_lag] {
            let arrival = t + delay + extra;
            prop_assert!(
                window_index(SimTime::from_micros(arrival), w)
                    > window_index(SimTime::from_micros(t), w),
                "arrival {arrival} did not clear the send window of {t} (W={delay})"
            );
        }
    }

    /// The engine's per-window execution limit is
    /// `min(barrier, deadline + 1µs)` (deadline-clamped windows). A
    /// message sent at any instant the window actually executes lands
    /// at or beyond that limit — cross-tile copies routed at the
    /// barrier can never be late, even on the clamped final window.
    #[test]
    fn cross_tile_transmit_lands_at_or_beyond_the_window_limit(
        t in 0u64..1_000_000_000,
        w in 1u64..50_000,
        deadline_off in 0u64..200_000,
        extra in 0u64..100_000,
    ) {
        let width = SimDuration::from_micros(w);
        let deadline = t + deadline_off; // t executes only if t ≤ deadline
        let k = window_index(SimTime::from_micros(t), width);
        let lim = window_end(k, width)
            .as_micros()
            .min(deadline.saturating_add(1));
        let arrival = t + w + extra; // delay = W plus any extras
        prop_assert!(
            arrival >= lim,
            "arrival {arrival} inside execution limit {lim} (t={t}, W={w}, deadline={deadline})"
        );
    }

    /// Tile assignment is total (every point maps to a valid tile,
    /// even far outside the bounding box) and row-major-consistent.
    #[test]
    fn tile_assignment_is_total_and_consistent(
        pts in proptest::collection::vec((-500.0f64..500.0, -500.0f64..500.0), 1..50),
        probe_x in -2000.0f64..2000.0,
        probe_y in -2000.0f64..2000.0,
        gx in 1u32..8,
        gy in 1u32..8,
    ) {
        let positions: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let grid = TileGrid::new(&positions, gx, gy);
        prop_assert_eq!(grid.len(), (gx * gy) as usize);
        for p in &positions {
            let (cx, cy) = grid.cell_of(*p);
            prop_assert!(cx < gx && cy < gy);
            prop_assert_eq!(grid.tile_of(*p), cy * gx + cx);
        }
        let probe = Point::new(probe_x, probe_y);
        prop_assert!((grid.tile_of(probe) as usize) < grid.len());
    }

    /// Mobility-drift stability: a node that moves strictly less than
    /// its `boundary_margin` (per axis) keeps its tile. This is the
    /// contract a future mobility-aware re-tiling pass leans on — only
    /// nodes whose drift exceeds their margin can change tiles.
    #[test]
    fn tile_assignment_is_stable_under_drift_within_margin(
        pts in proptest::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 2..40),
        which in 0usize..40,
        frac_x in -0.99f64..0.99,
        frac_y in -0.99f64..0.99,
        gx in 1u32..8,
        gy in 1u32..8,
    ) {
        let positions: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let grid = TileGrid::new(&positions, gx, gy);
        let p = positions[which % positions.len()];
        let margin = grid.boundary_margin(p);
        prop_assert!(margin >= 0.0);
        if margin.is_finite() && margin > 0.0 {
            let drifted = Point::new(p.x + frac_x * margin, p.y + frac_y * margin);
            prop_assert_eq!(
                grid.tile_of(drifted),
                grid.tile_of(p),
                "drift ({:.4}, {:.4}) within margin {:.4} changed tile",
                frac_x * margin,
                frac_y * margin,
                margin
            );
        } else {
            // Infinite margin: the whole axis (or the outward side of
            // an edge cell) belongs to this tile — any drift that kept
            // the finite axes in place keeps the tile. Spot-check a
            // large move on a degenerate single-cell grid.
            if gx == 1 && gy == 1 {
                let far = Point::new(p.x + 1e6, p.y - 1e6);
                prop_assert_eq!(grid.tile_of(far), grid.tile_of(p));
            }
        }
    }
}
