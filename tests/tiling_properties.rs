//! Property-based tests for the tiled engine's barrier and lookahead
//! arithmetic (DESIGN.md §14): window boundary inclusivity, the
//! range-derived lookahead lower bound, cross-tile transmits landing
//! beyond the execution limit of the window that sent them, tile
//! assignment stability under bounded mobility drift, window-scheduler
//! equivalence against the brute-force scan, and exchange determinism
//! under grid × worker variation.

use cbfd::core::config::FdsConfig;
use cbfd::net::tiled::{
    lookahead_of, suggested_grid, window_end, window_index, TileGrid, TileSchedule,
};
use cbfd::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::RngExt;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Windows are half-open `[k·W, (k+1)·W)`: an event exactly at a
    /// barrier belongs to the *next* window, and every instant falls
    /// inside the window its index names.
    #[test]
    fn window_boundaries_are_half_open(
        at in 0u64..1_000_000_000,
        w in 1u64..100_000,
    ) {
        let width = SimDuration::from_micros(w);
        let k = window_index(SimTime::from_micros(at), width);
        // Containment: k·W ≤ at < (k+1)·W.
        prop_assert!(k.saturating_mul(w) <= at);
        prop_assert!(at < window_end(k, width).as_micros());
        // Barrier inclusivity: the barrier instant itself indexes the
        // next window.
        let barrier = window_end(k, width).as_micros();
        prop_assert_eq!(window_index(SimTime::from_micros(barrier), width), k + 1);
        // A window's end is the next window's start.
        prop_assert_eq!(
            window_end(k, width).as_micros(),
            (k + 1).saturating_mul(w)
        );
    }

    /// The lookahead is the radio's base delay, and it is a true lower
    /// bound: jitter, per-link lag, and duplication lag only add
    /// latency, so every delivery lands in a strictly later window
    /// than its transmission.
    #[test]
    fn lookahead_forces_strictly_later_window(
        t in 0u64..1_000_000_000,
        delay in 1u64..50_000,
        jitter_draw in 0u64..50_000,
        link_lag in 0u64..100_000,
        dup_lag in 0u64..100_000,
    ) {
        let radio = RadioConfig::lossless()
            .with_delay(SimDuration::from_micros(delay))
            .with_jitter(SimDuration::from_micros(jitter_draw));
        let w = lookahead_of(&radio);
        prop_assert_eq!(w, SimDuration::from_micros(delay));
        // Worst case for the bound is the *minimum* added latency:
        // zero jitter, zero lag. Any extras push further out.
        for extra in [0, jitter_draw + link_lag, jitter_draw + link_lag + dup_lag] {
            let arrival = t + delay + extra;
            prop_assert!(
                window_index(SimTime::from_micros(arrival), w)
                    > window_index(SimTime::from_micros(t), w),
                "arrival {arrival} did not clear the send window of {t} (W={delay})"
            );
        }
    }

    /// The engine's per-window execution limit is
    /// `min(barrier, deadline + 1µs)` (deadline-clamped windows). A
    /// message sent at any instant the window actually executes lands
    /// at or beyond that limit — cross-tile copies routed at the
    /// barrier can never be late, even on the clamped final window.
    #[test]
    fn cross_tile_transmit_lands_at_or_beyond_the_window_limit(
        t in 0u64..1_000_000_000,
        w in 1u64..50_000,
        deadline_off in 0u64..200_000,
        extra in 0u64..100_000,
    ) {
        let width = SimDuration::from_micros(w);
        let deadline = t + deadline_off; // t executes only if t ≤ deadline
        let k = window_index(SimTime::from_micros(t), width);
        let lim = window_end(k, width)
            .as_micros()
            .min(deadline.saturating_add(1));
        let arrival = t + w + extra; // delay = W plus any extras
        prop_assert!(
            arrival >= lim,
            "arrival {arrival} inside execution limit {lim} (t={t}, W={w}, deadline={deadline})"
        );
    }

    /// Tile assignment is total (every point maps to a valid tile,
    /// even far outside the bounding box) and row-major-consistent.
    #[test]
    fn tile_assignment_is_total_and_consistent(
        pts in proptest::collection::vec((-500.0f64..500.0, -500.0f64..500.0), 1..50),
        probe_x in -2000.0f64..2000.0,
        probe_y in -2000.0f64..2000.0,
        gx in 1u32..8,
        gy in 1u32..8,
    ) {
        let positions: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let grid = TileGrid::new(&positions, gx, gy);
        prop_assert_eq!(grid.len(), (gx * gy) as usize);
        for p in &positions {
            let (cx, cy) = grid.cell_of(*p);
            prop_assert!(cx < gx && cy < gy);
            prop_assert_eq!(grid.tile_of(*p), cy * gx + cx);
        }
        let probe = Point::new(probe_x, probe_y);
        prop_assert!((grid.tile_of(probe) as usize) < grid.len());
    }

    /// Mobility-drift stability: a node that moves strictly less than
    /// its `boundary_margin` (per axis) keeps its tile. This is the
    /// contract a future mobility-aware re-tiling pass leans on — only
    /// nodes whose drift exceeds their margin can change tiles.
    #[test]
    fn tile_assignment_is_stable_under_drift_within_margin(
        pts in proptest::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 2..40),
        which in 0usize..40,
        frac_x in -0.99f64..0.99,
        frac_y in -0.99f64..0.99,
        gx in 1u32..8,
        gy in 1u32..8,
    ) {
        let positions: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let grid = TileGrid::new(&positions, gx, gy);
        let p = positions[which % positions.len()];
        let margin = grid.boundary_margin(p);
        prop_assert!(margin >= 0.0);
        if margin.is_finite() && margin > 0.0 {
            let drifted = Point::new(p.x + frac_x * margin, p.y + frac_y * margin);
            prop_assert_eq!(
                grid.tile_of(drifted),
                grid.tile_of(p),
                "drift ({:.4}, {:.4}) within margin {:.4} changed tile",
                frac_x * margin,
                frac_y * margin,
                margin
            );
        } else {
            // Infinite margin: the whole axis (or the outward side of
            // an edge cell) belongs to this tile — any drift that kept
            // the finite axes in place keeps the tile. Spot-check a
            // large move on a degenerate single-cell grid.
            if gx == 1 && gy == 1 {
                let far = Point::new(p.x + 1e6, p.y - 1e6);
                prop_assert_eq!(grid.tile_of(far), grid.tile_of(p));
            }
        }
    }

    /// Window-scheduler equivalence: the O(log T) tournament tree the
    /// window loop maintains agrees with the brute-force O(tiles)
    /// `peek_time()` scan it replaced, on randomized queue states —
    /// both the global minimum after every update and the
    /// ascending-tile-order active set for arbitrary limits.
    #[test]
    fn tile_schedule_matches_brute_force_scan(
        tiles in 1usize..130,
        ops in proptest::collection::vec(
            (0usize..130, proptest::option::of(0u64..10_000)),
            1..200,
        ),
        probes in proptest::collection::vec(0u64..10_002, 1..8),
    ) {
        let mut sched = TileSchedule::new(tiles);
        let mut brute: Vec<Option<u64>> = vec![None; tiles];
        for (t, v) in ops {
            let t = t % tiles;
            brute[t] = v;
            sched.set(t, v.map(SimTime::from_micros));
            prop_assert_eq!(
                sched.min_time(),
                brute.iter().filter_map(|&x| x).min().map(SimTime::from_micros)
            );
        }
        for lim in probes {
            let mut got = Vec::new();
            sched.collect_before(SimTime::from_micros(lim), &mut got);
            let want: Vec<u32> = brute
                .iter()
                .enumerate()
                .filter(|(_, x)| x.is_some_and(|v| v < lim))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, want, "lim={}", lim);
        }
    }
}

/// One full-FDS run's observable output, for exchange-determinism
/// comparison: the event trace, merged traffic metrics, and exact
/// per-node energy bits.
fn tiled_fingerprint(
    exp: &cbfd::core::service::Experiment,
    loss_p: f64,
    seed: u64,
    dup: f64,
    horizon: SimTime,
    (gx, gy, workers): (u32, u32, usize),
) -> (Vec<cbfd::net::trace::TraceRecord>, String, Vec<u64>) {
    let radio = RadioConfig::bernoulli(loss_p).with_jitter(SimDuration::from_micros(200));
    let mut sim = exp.build_tiled_sim(radio, seed, gx, gy);
    sim.set_workers(workers);
    sim.enable_trace();
    if dup > 0.0 {
        sim.set_duplication(dup, SimDuration::from_micros(137));
    }
    sim.run_until(horizon);
    (
        sim.trace().records().to_vec(),
        format!("{:?}", sim.metrics()),
        sim.energy_remaining_vec()
            .iter()
            .map(|e| e.to_bits())
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exchange determinism: the routed-copy order — and with it every
    /// observable output — is invariant under worker count and bucket
    /// layout. Different grids change how copies are bucketed per
    /// destination (1×1 has no cross-tile traffic at all; fine grids
    /// maximize it) and different worker counts change which thread
    /// routes which destination; duplication forces several copies of
    /// one transmission into one destination bucket (the shared-payload
    /// path). Trace, metrics, and energy must not move.
    #[test]
    fn exchange_is_invariant_under_grid_and_workers(
        n in 8usize..24,
        seed in 0u64..1_000_000,
        dup_sel in 0u8..3,
        loss_p in 0.0f64..0.3,
        side in 150.0f64..400.0,
    ) {
        let dup = [0.0f64, 0.2, 0.45][dup_sel as usize];
        let mut rng = StdRng::seed_from_u64(0xE8C4_A0DE ^ seed);
        let positions: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
            .collect();
        let topology = Topology::from_positions(positions, 120.0);
        let fds = FdsConfig::default();
        let horizon = SimTime::ZERO + fds.heartbeat_interval * 3;
        let exp = Experiment::new(topology, fds, FormationConfig::default());
        let (mx, my) = suggested_grid(n, 1);
        let reference = tiled_fingerprint(&exp, loss_p, seed, dup, horizon, (1, 1, 1));
        for (gx, gy, workers) in [(2, 2, 1), (2, 2, 8), (mx, my, 2), (mx, my, 8)] {
            let other = tiled_fingerprint(&exp, loss_p, seed, dup, horizon, (gx, gy, workers));
            prop_assert_eq!(&reference.0, &other.0, "trace diverged at {}x{} w{}", gx, gy, workers);
            prop_assert_eq!(&reference.1, &other.1, "metrics diverged at {}x{} w{}", gx, gy, workers);
            prop_assert_eq!(&reference.2, &other.2, "energy diverged at {}x{} w{}", gx, gy, workers);
        }
    }
}
