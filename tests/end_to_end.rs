//! End-to-end integration: placement → formation (oracle and
//! distributed) → failure detection service → the paper's properties.

use cbfd::cluster::{invariants, protocol};
use cbfd::prelude::*;

fn random_topology(seed: u64, n: usize, side: f64) -> Topology {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let positions = Placement::UniformRect(Rect::square(side)).generate(n, &mut rng);
    Topology::from_positions(positions, 100.0)
}

#[test]
fn full_pipeline_with_oracle_formation() {
    let topology = random_topology(1, 150, 500.0);
    let experiment = Experiment::new(topology, FdsConfig::default(), FormationConfig::default());
    let victims = [
        PlannedCrash {
            epoch: 1,
            node: NodeId(30),
        },
        PlannedCrash {
            epoch: 2,
            node: NodeId(99),
        },
    ];
    let outcome = experiment.run(0.05, 8, &victims, 1);
    assert!(outcome.accurate(), "{:?}", outcome.false_detections);
    for v in &victims {
        assert!(
            outcome.detection_latency.contains_key(&v.node),
            "{} undetected",
            v.node
        );
    }
    assert_eq!(outcome.completeness, 1.0, "missed: {:?}", outcome.missed);
}

#[test]
fn full_pipeline_with_distributed_formation() {
    // The clustering itself formed over the lossy radio, then the FDS
    // runs on the resulting view.
    let topology = random_topology(2, 100, 450.0);
    let view = protocol::run_formation(
        &topology,
        RadioConfig::bernoulli(0.05),
        &FormationConfig::default(),
        SimDuration::from_millis(10),
        12,
        2,
    );
    assert!(
        invariants::check(&topology, &view).is_empty(),
        "distributed formation must be structurally sound"
    );
    let experiment = Experiment::with_view(topology, view, FdsConfig::default());
    let outcome = experiment.run(
        0.05,
        8,
        &[PlannedCrash {
            epoch: 1,
            node: NodeId(60),
        }],
        2,
    );
    assert!(outcome.detection_latency.contains_key(&NodeId(60)));
    assert!(
        outcome.completeness > 0.99,
        "completeness {}",
        outcome.completeness
    );
}

#[test]
fn dense_single_component_reaches_full_completeness_under_loss() {
    // Dense field: the backbone is one component, so even at p = 0.2
    // every crash must eventually reach every operational node.
    let topology = random_topology(3, 200, 500.0);
    let experiment = Experiment::new(topology, FdsConfig::default(), FormationConfig::default());
    assert_eq!(
        experiment.view().backbone_components().len(),
        1,
        "field must be dense enough for a connected backbone"
    );
    let outcome = experiment.run(
        0.2,
        12,
        &[PlannedCrash {
            epoch: 2,
            node: NodeId(111),
        }],
        3,
    );
    assert!(outcome.detection_latency.contains_key(&NodeId(111)));
    assert_eq!(outcome.completeness, 1.0, "missed: {:?}", outcome.missed);
}

#[test]
fn no_news_is_good_news_suppresses_reports() {
    // Without failures, no inter-cluster reports should flow at all.
    let topology = random_topology(4, 120, 500.0);
    let experiment = Experiment::new(topology, FdsConfig::default(), FormationConfig::default());
    let outcome = experiment.run(0.0, 6, &[], 4);
    assert_eq!(outcome.reports, 0, "quiet network must send no reports");
    assert_eq!(outcome.retransmissions, 0);
    assert_eq!(outcome.peer_forwards, 0, "lossless: nobody misses updates");
}

#[test]
fn head_and_member_crash_in_same_cluster() {
    let topology = random_topology(5, 150, 450.0);
    let experiment = Experiment::new(topology, FdsConfig::default(), FormationConfig::default());
    let cluster = experiment
        .view()
        .clusters()
        .find(|c| c.len() >= 6 && c.first_deputy().is_some())
        .expect("dense field has a big cluster")
        .clone();
    let head = cluster.head();
    let member = cluster
        .non_head_members()
        .find(|m| cluster.deputy_rank(*m).is_none())
        .expect("cluster has an ordinary member");
    let crashes = [
        PlannedCrash {
            epoch: 1,
            node: head,
        },
        PlannedCrash {
            epoch: 3,
            node: member,
        },
    ];
    let outcome = experiment.run(0.05, 10, &crashes, 5);
    assert!(
        outcome.detection_latency.contains_key(&head),
        "head crash must be judged by the deputy"
    );
    assert!(
        outcome.detection_latency.contains_key(&member),
        "the promoted deputy must detect the later member crash"
    );
}

#[test]
fn detection_latency_is_one_epoch_on_clean_channels() {
    let topology = random_topology(6, 120, 450.0);
    let experiment = Experiment::new(topology, FdsConfig::default(), FormationConfig::default());
    let victim = experiment
        .view()
        .clusters()
        .flat_map(|c| c.non_head_members().collect::<Vec<_>>())
        .next()
        .unwrap();
    let outcome = experiment.run(
        0.0,
        5,
        &[PlannedCrash {
            epoch: 1,
            node: victim,
        }],
        6,
    );
    // Crash mid-epoch 1 → first silent FDS execution is epoch 2.
    assert_eq!(outcome.detection_latency[&victim], 1);
}

#[test]
fn runs_are_reproducible() {
    let topology = random_topology(7, 100, 450.0);
    let experiment = Experiment::new(topology, FdsConfig::default(), FormationConfig::default());
    let crashes = [PlannedCrash {
        epoch: 1,
        node: NodeId(40),
    }];
    let a = experiment.run(0.3, 6, &crashes, 77);
    let b = experiment.run(0.3, 6, &crashes, 77);
    assert_eq!(a.metrics.transmissions, b.metrics.transmissions);
    assert_eq!(a.false_detections, b.false_detections);
    assert_eq!(a.missed, b.missed);
    let c = experiment.run(0.3, 6, &crashes, 78);
    assert_ne!(a.metrics.deliveries, c.metrics.deliveries);
}
