//! Golden-value regression tests pinning the EXPERIMENTS.md anchors.
//!
//! These are the closed-form numbers the repository's figure tables
//! are validated against (Figures 5–7 of the paper). They depend only
//! on the analysis code — no randomness — so they are pinned to four
//! significant digits: a change here means the model itself changed
//! and EXPERIMENTS.md must be re-derived.

use cbfd::analysis::{ch_false_detection, false_detection, incompleteness};

/// Relative-error check against a 4-significant-digit anchor.
fn close(actual: f64, anchor: f64) -> bool {
    (actual - anchor).abs() <= 5e-4 * anchor.abs()
}

#[test]
fn fig5_false_detection_anchors() {
    for (n, p, anchor) in [
        (50, 0.5, 1.793e-3),
        (75, 0.5, 1.370e-4),
        (100, 0.5, 1.047e-5),
        (50, 0.05, 2.115e-12),
        (100, 0.05, 7.490e-22),
    ] {
        let actual = false_detection::worst_case(n, p);
        assert!(
            close(actual, anchor),
            "fig5 N={n} p={p}: {actual:.4e} drifted from anchor {anchor:.4e}"
        );
    }
}

#[test]
fn fig6_ch_false_detection_anchors() {
    for (n, p, anchor) in [(50, 0.5, 1.258e-7), (75, 0.5, 9.5e-11), (100, 0.5, 7.1e-14)] {
        let actual = ch_false_detection::probability(n, p);
        // The two sparser anchors are quoted to 2 significant digits.
        let tol = if n == 50 { 5e-4 } else { 5e-2 };
        assert!(
            (actual - anchor).abs() <= tol * anchor,
            "fig6 N={n} p={p}: {actual:.4e} drifted from anchor {anchor:.4e}"
        );
    }
    // Axis-floor regime: same order of magnitude as the 1.0e-103 anchor.
    let floor = ch_false_detection::probability(100, 0.05);
    assert!(
        (9e-104..2e-103).contains(&floor),
        "fig6 N=100 p=0.05: {floor:.4e} left the anchored regime"
    );
}

#[test]
fn fig7_incompleteness_anchors() {
    for (n, p, anchor) in [
        (50, 0.5, 4.512e-2),
        (100, 0.5, 3.683e-3),
        (100, 0.05, 2.091e-19),
    ] {
        let actual = incompleteness::worst_case(n, p);
        assert!(
            close(actual, anchor),
            "fig7 N={n} p={p}: {actual:.4e} drifted from anchor {anchor:.4e}"
        );
    }
}
