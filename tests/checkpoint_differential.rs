//! Differential checkpoint suite: restore-then-run must be
//! **byte-identical** to an uninterrupted run.
//!
//! Every case draws a randomized churn workload — geometry, channel
//! loss, crashes, graceful leaves, rejoins with stale state, late
//! joins — runs it uninterrupted, and runs it again with a
//! checkpoint/restore interruption after a random number of events.
//! The verdict is the strongest possible: the *final checkpoint
//! bytes* of the two runs must be equal, which covers every actor's
//! protocol state, the event queue, the RNG, metrics, energy ledgers,
//! and the full trace in one comparison.
//!
//! The suite executes its cases through the deterministic sweep
//! runner at worker counts 1, 2 and max, asserting the per-case
//! digests are identical for every count.

use cbfd::core::config::DetectionMode;
use cbfd::core::node::FdsNode;
use cbfd::net::checkpoint::{CheckpointError, Persist, Reader, Writer};
use cbfd::net::par;
use cbfd::net::sim::Simulator;
use cbfd::net::tiled::TiledSim;
use cbfd::prelude::*;
use cbfd_cluster::FormationConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One randomized churn workload over one field.
struct ChurnCase {
    exp: Experiment,
    p: f64,
    epochs: u64,
    /// Node to keep dormant and join mid-run.
    joiner: Option<(NodeId, SimTime)>,
    crashes: Vec<(NodeId, SimTime)>,
    leaves: Vec<(NodeId, SimTime)>,
    rejoins: Vec<(NodeId, SimTime)>,
    /// Events to execute before the snapshot is taken.
    snapshot_after: usize,
    seed: u64,
}

fn build_case(seed: u64) -> ChurnCase {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let n = rng.random_range(20..=40usize);
    let side = rng.random_range(250.0..400.0);
    let pts = Placement::UniformRect(Rect::square(side)).generate(n, &mut rng);
    let topology = Topology::from_positions(pts, 100.0);
    // Odd seeds run the adaptive ◇P detector, so its per-link
    // estimators, suspicion log, and gossip bitmaps all go through the
    // snapshot/restore byte-identity verdict.
    let fds = FdsConfig {
        detection_mode: if seed % 2 == 1 {
            DetectionMode::Adaptive
        } else {
            DetectionMode::Fixed
        },
        ..FdsConfig::default()
    };
    let exp = Experiment::new(topology, fds, FormationConfig::default());
    let p = rng.random_range(0.0..0.25);
    let epochs = rng.random_range(4..=7u64);
    let phi = FdsConfig::default().heartbeat_interval;
    let horizon = phi.as_micros() * epochs;
    let instant =
        |rng: &mut StdRng| SimTime::from_micros(rng.random_range(horizon / 8..horizon * 3 / 4));

    let mut crashes = Vec::new();
    let mut leaves = Vec::new();
    let mut rejoins = Vec::new();
    for _ in 0..rng.random_range(1..=3u32) {
        let node = NodeId(rng.random_range(0..n as u32));
        let at = instant(&mut rng);
        match rng.random_range(0..3u32) {
            0 => crashes.push((node, at)),
            1 => leaves.push((node, at)),
            _ => {
                // Crash or leave first, come back later with whatever
                // stale state survived.
                if rng.random_bool(0.5) {
                    crashes.push((node, at));
                } else {
                    leaves.push((node, at));
                }
                rejoins.push((node, at + phi * rng.random_range(1..=2u64)));
            }
        }
    }
    let joiner = rng
        .random_bool(0.4)
        .then(|| (NodeId(rng.random_range(0..n as u32)), instant(&mut rng)));
    ChurnCase {
        exp,
        p,
        epochs,
        joiner,
        crashes,
        leaves,
        rejoins,
        snapshot_after: rng.random_range(1..=150usize),
        seed,
    }
}

fn build_sim(case: &ChurnCase) -> Simulator<FdsNode> {
    let mut sim = case
        .exp
        .build_sim(RadioConfig::bernoulli(case.p), case.seed);
    if let Some((node, at)) = case.joiner {
        sim.set_dormant(node);
        sim.schedule_join(node, at);
    }
    for &(node, at) in &case.crashes {
        sim.schedule_crash(node, at);
    }
    for &(node, at) in &case.leaves {
        sim.schedule_leave(node, at);
    }
    for &(node, at) in &case.rejoins {
        sim.schedule_rejoin(node, at);
    }
    sim.enable_trace();
    sim
}

fn deadline(case: &ChurnCase) -> SimTime {
    let phi = FdsConfig::default().heartbeat_interval;
    SimTime::ZERO + phi * case.epochs - SimDuration::from_micros(1)
}

/// The uninterrupted run's final snapshot.
fn run_straight(case: &ChurnCase) -> Vec<u8> {
    let mut sim = build_sim(case);
    sim.run_until(deadline(case));
    sim.checkpoint().expect("final checkpoint")
}

/// The interrupted run: step `snapshot_after` events, snapshot,
/// restore from the bytes, finish. Returns (mid-run bytes, final
/// bytes).
fn run_interrupted(case: &ChurnCase) -> (Vec<u8>, Vec<u8>) {
    let mut sim = build_sim(case);
    let end = deadline(case);
    for _ in 0..case.snapshot_after {
        if sim.now() >= end || !sim.step_one() {
            break;
        }
    }
    let mid = sim.checkpoint().expect("mid-run checkpoint");
    drop(sim);
    let mut resumed: Simulator<FdsNode> = Simulator::restore(&mid).expect("restore");
    resumed.run_until(end);
    (mid, resumed.checkpoint().expect("final checkpoint"))
}

/// FNV-1a digest of a snapshot, so the worker-count sweep compares
/// small values instead of multi-kilobyte blobs.
fn digest(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const CASES: u64 = 104;

#[test]
fn restore_then_run_is_byte_identical_across_workers() {
    let seeds: Vec<u64> = (0..CASES).collect();
    let run_case = |_w: usize, &seed: &u64| {
        let case = build_case(seed);
        let straight = run_straight(&case);
        let (mid, resumed) = run_interrupted(&case);
        assert_eq!(
            straight, resumed,
            "seed {seed}: resumed run diverged from uninterrupted run \
             (snapshot after {} events)",
            case.snapshot_after
        );
        // Restoring the same snapshot twice must also agree.
        let mut again: Simulator<FdsNode> = Simulator::restore(&mid).expect("second restore");
        again.run_until(deadline(&case));
        assert_eq!(
            again.checkpoint().expect("checkpoint"),
            straight,
            "seed {seed}: second restore diverged"
        );
        digest(&straight)
    };
    let one = par::par_map(1, &seeds, run_case);
    let two = par::par_map(2, &seeds, run_case);
    let max = par::par_map(par::default_workers().max(2), &seeds, run_case);
    assert_eq!(one, two, "workers 1 vs 2");
    assert_eq!(one, max, "workers 1 vs max");
}

#[test]
fn restored_outcome_matches_uninterrupted_verdicts() {
    // Beyond byte equality of state: the evaluated verdicts (false
    // detections, completeness, latencies) agree when the run is
    // scored through the public evaluate path.
    for seed in [3u64, 17, 55] {
        let case = build_case(seed);
        let end = deadline(&case);
        let crash_epochs: std::collections::BTreeMap<NodeId, u64> = case
            .crashes
            .iter()
            .map(|&(node, at)| {
                (
                    node,
                    at.as_micros() / FdsConfig::default().heartbeat_interval.as_micros(),
                )
            })
            .collect();

        let mut straight = build_sim(&case);
        straight.run_until(end);
        let a = case.exp.evaluate(&straight, case.epochs, &crash_epochs);

        let mut sim = build_sim(&case);
        for _ in 0..case.snapshot_after {
            if sim.now() >= end || !sim.step_one() {
                break;
            }
        }
        let bytes = sim.checkpoint().expect("checkpoint");
        let mut resumed: Simulator<FdsNode> = Simulator::restore(&bytes).expect("restore");
        resumed.run_until(end);
        let b = case.exp.evaluate(&resumed, case.epochs, &crash_epochs);

        assert_eq!(a.false_detections, b.false_detections, "seed {seed}");
        assert_eq!(a.missed, b.missed, "seed {seed}");
        assert_eq!(a.completeness, b.completeness, "seed {seed}");
        assert_eq!(a.detection_latency, b.detection_latency, "seed {seed}");
        assert_eq!(a.metrics, b.metrics, "seed {seed}");
        assert_eq!(a.bytes, b.bytes, "seed {seed}");
    }
}

#[test]
fn snapshot_rejects_corruption_without_panicking() {
    let case = build_case(1);
    let mut sim = build_sim(&case);
    for _ in 0..40 {
        sim.step_one();
    }
    let bytes = sim.checkpoint().expect("checkpoint");

    // Truncations at every prefix length of the header region and a
    // sample of interior cuts must fail cleanly.
    for cut in (0..bytes.len().min(64)).chain([bytes.len() / 2, bytes.len() - 1]) {
        assert!(
            Simulator::<FdsNode>::restore(&bytes[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }
    // Bit flips in the magic/version must be rejected too.
    for i in 0..12 {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        assert!(
            Simulator::<FdsNode>::restore(&bad).is_err(),
            "corrupt header byte {i} must be rejected"
        );
    }
    // Trailing garbage is not silently ignored.
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(Simulator::<FdsNode>::restore(&padded).is_err());
}

// ------------------------------------------------- tiled engine

/// The tiled counterpart of [`build_sim`]: identical schedule on the
/// spatially tiled engine.
fn build_tiled(case: &ChurnCase, gx: u32, gy: u32) -> TiledSim<FdsNode> {
    let mut sim = case
        .exp
        .build_tiled_sim(RadioConfig::bernoulli(case.p), case.seed, gx, gy);
    if let Some((node, at)) = case.joiner {
        sim.set_dormant(node);
        sim.schedule_join(node, at);
    }
    for &(node, at) in &case.crashes {
        sim.schedule_crash(node, at);
    }
    for &(node, at) in &case.leaves {
        sim.schedule_leave(node, at);
    }
    for &(node, at) in &case.rejoins {
        sim.schedule_rejoin(node, at);
    }
    sim.enable_trace();
    sim
}

/// A mid-window instant: strictly inside the run, never aligned to the
/// 1 ms barrier grid, varied per seed.
fn mid_window_instant(case: &ChurnCase) -> SimTime {
    let end = deadline(case).as_micros();
    let mid = end / 3 + 137 + (case.seed * 271) % 800;
    SimTime::from_micros(if mid.is_multiple_of(1000) {
        mid + 1
    } else {
        mid
    })
}

#[test]
fn tiled_mid_window_restore_then_run_is_byte_identical() {
    // Same verdict as the single-queue suite, on the tiled engine,
    // with the snapshot taken at a non-barrier-aligned instant (the
    // partially-executed window's remainder sits in the per-tile
    // queues). Both runs pause at `mid`, so their energy-harvest sync
    // points — and therefore every byte — must agree.
    for seed in 0..24u64 {
        let case = build_case(seed);
        let end = deadline(&case);
        let mid = mid_window_instant(&case);
        let (gx, gy) = [(1, 1), (2, 2), (3, 2), (4, 4)][(seed % 4) as usize];

        let mut straight = build_tiled(&case, gx, gy);
        straight.run_until(mid);
        straight.run_until(end);
        let straight_bytes = straight.checkpoint().expect("final checkpoint");

        let mut sim = build_tiled(&case, gx, gy);
        sim.run_until(mid);
        let mid_bytes = sim.checkpoint().expect("mid-window checkpoint");
        drop(sim);
        let mut resumed: TiledSim<FdsNode> = TiledSim::restore(&mid_bytes).expect("restore");
        assert_eq!(resumed.grid_dims(), (gx, gy), "seed {seed}: grid survives");
        assert_eq!(resumed.now(), mid, "seed {seed}: clock survives");
        resumed.run_until(end);
        assert_eq!(
            resumed.checkpoint().expect("final checkpoint"),
            straight_bytes,
            "seed {seed}: tiled resume at {mid:?} diverged (grid {gx}x{gy})"
        );

        // Restoring the same snapshot twice must also agree, and a
        // different worker count on the resumed engine must not show.
        let mut again: TiledSim<FdsNode> =
            TiledSim::restore_with_grid(&mid_bytes, gx, gy).expect("second restore");
        again.set_workers(4);
        again.run_until(end);
        assert_eq!(
            again.checkpoint().expect("checkpoint"),
            straight_bytes,
            "seed {seed}: second restore (4 workers) diverged"
        );
    }
}

#[test]
fn tiled_checkpoint_pins_its_grid() {
    // The chosen re-tiling policy: a checkpoint restored at a
    // different tile count is REJECTED, not silently re-tiled.
    let case = build_case(5);
    let mut sim = build_tiled(&case, 2, 2);
    sim.run_until(mid_window_instant(&case));
    let bytes = sim.checkpoint().expect("checkpoint");

    assert!(TiledSim::<FdsNode>::restore_with_grid(&bytes, 2, 2).is_ok());
    for (gx, gy) in [(1, 1), (3, 3), (2, 3), (4, 4)] {
        let err = TiledSim::<FdsNode>::restore_with_grid(&bytes, gx, gy)
            .expect_err("grid mismatch must be rejected");
        assert!(
            matches!(err, CheckpointError::Corrupt(msg) if msg.contains("grid")),
            "unexpected rejection: {err:?}"
        );
    }
}

#[test]
fn tiled_and_legacy_checkpoints_are_mutually_rejected() {
    let case = build_case(9);

    let mut tiled = build_tiled(&case, 2, 2);
    tiled.run_until(mid_window_instant(&case));
    let tiled_bytes = tiled.checkpoint().expect("tiled checkpoint");
    assert!(
        Simulator::<FdsNode>::restore(&tiled_bytes).is_err(),
        "legacy restore must reject a tiled snapshot"
    );

    let mut legacy = build_sim(&case);
    for _ in 0..40 {
        legacy.step_one();
    }
    let legacy_bytes = legacy.checkpoint().expect("legacy checkpoint");
    assert!(
        matches!(
            TiledSim::<FdsNode>::restore(&legacy_bytes),
            Err(CheckpointError::Corrupt(_))
        ),
        "tiled restore must reject a single-queue snapshot"
    );

    // And tiled snapshots reject the same corruption classes.
    for cut in [0, 4, 12, tiled_bytes.len() / 2, tiled_bytes.len() - 1] {
        assert!(TiledSim::<FdsNode>::restore(&tiled_bytes[..cut]).is_err());
    }
    let mut padded = tiled_bytes.clone();
    padded.push(0);
    assert!(TiledSim::<FdsNode>::restore(&padded).is_err());
}

// ------------------------------------------------- round-trip props

proptest::proptest! {
    #[test]
    fn primitive_round_trips(
        a in proptest::prelude::any::<u64>(),
        b in proptest::prelude::any::<i64>(),
        c in proptest::prelude::any::<bool>(),
        d in proptest::prelude::any::<f64>(),
        sv in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..24),
        v in proptest::collection::vec(proptest::prelude::any::<u32>(), 0..16),
    ) {
        let s: String = sv.iter().map(|b| char::from(b'a' + b % 26)).collect();
        let mut w = Writer::new();
        a.persist(&mut w);
        b.persist(&mut w);
        c.persist(&mut w);
        d.persist(&mut w);
        s.persist(&mut w);
        v.persist(&mut w);
        Some(a).persist(&mut w);
        Option::<u64>::None.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        proptest::prop_assert_eq!(u64::restore(&mut r).unwrap(), a);
        proptest::prop_assert_eq!(i64::restore(&mut r).unwrap(), b);
        proptest::prop_assert_eq!(bool::restore(&mut r).unwrap(), c);
        let d2 = f64::restore(&mut r).unwrap();
        proptest::prop_assert_eq!(d2.to_bits(), d.to_bits(), "bit-exact floats");
        proptest::prop_assert_eq!(String::restore(&mut r).unwrap(), s);
        proptest::prop_assert_eq!(Vec::<u32>::restore(&mut r).unwrap(), v);
        proptest::prop_assert_eq!(Option::<u64>::restore(&mut r).unwrap(), Some(a));
        proptest::prop_assert_eq!(Option::<u64>::restore(&mut r).unwrap(), None);
        proptest::prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_never_panics_on_garbage(bytes in proptest::collection::vec(
        proptest::prelude::any::<u8>(), 0..64,
    )) {
        // Whatever the input, restore returns Err or a value — it must
        // not panic or read out of bounds.
        let mut r = Reader::new(&bytes);
        let _ = Vec::<u64>::restore(&mut r);
        let mut r = Reader::new(&bytes);
        let _ = String::restore(&mut r);
        let mut r = Reader::new(&bytes);
        let _ = std::collections::BTreeMap::<u32, u32>::restore(&mut r);
        let _ = Simulator::<FdsNode>::restore(&bytes).err();
    }

    #[test]
    fn checkpoint_error_display_is_total(code in 0u32..4) {
        let err = match code {
            0 => CheckpointError::Truncated,
            1 => CheckpointError::BadMagic,
            2 => CheckpointError::UnsupportedVersion(9),
            _ => CheckpointError::Corrupt("test"),
        };
        proptest::prop_assert!(!err.to_string().is_empty());
    }
}
