//! Lifecycle (join / graceful leave / rejoin) behaviour of the FDS
//! protocol, and the bounded-memory guarantees that make week-long
//! soaks possible.
//!
//! The load-bearing regressions here:
//!
//! * a **graceful leave is not a failure** — departing nodes announce
//!   themselves and peers must not raise the paper's failure rule;
//! * a **rejoin with stale state** (the node kept its old ledgers,
//!   peers kept theirs) must converge without a false crash verdict;
//! * the **churn scheduling APIs never panic** on garbage node ids,
//!   dead targets, or timestamps in the past;
//! * the per-node **ledger GC holds a memory plateau** under sustained
//!   crash/rejoin churn when `retention_epochs` is set, and provably
//!   grows without it.

use cbfd::core::node::FdsNode;
use cbfd::net::sim::Simulator;
use cbfd::prelude::*;
use std::collections::BTreeMap;

fn dense_experiment(n: usize, seed: u64) -> Experiment {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pts = Placement::UniformRect(Rect::square(300.0)).generate(n, &mut rng);
    let topology = Topology::from_positions(pts, 120.0);
    Experiment::new(topology, FdsConfig::default(), FormationConfig::default())
}

fn phi() -> SimDuration {
    FdsConfig::default().heartbeat_interval
}

/// Mid-epoch instant: `epoch`s of heartbeats plus half an interval.
fn mid(epoch: u64) -> SimTime {
    SimTime::ZERO + phi() * epoch + SimDuration::from_micros(phi().as_micros() / 2)
}

fn run_for(sim: &mut Simulator<FdsNode>, epochs: u64) {
    sim.run_until(SimTime::ZERO + phi() * epochs - SimDuration::from_micros(1));
}

#[test]
fn graceful_leave_is_not_detected_as_failure() {
    let exp = dense_experiment(30, 11);
    let mut sim = exp.build_sim(RadioConfig::bernoulli(0.0), 11);
    let leaver = NodeId(5);
    sim.schedule_leave(leaver, mid(2));
    run_for(&mut sim, 8);

    assert!(sim.has_departed(leaver));
    let outcome = exp.evaluate(&sim, 8, &BTreeMap::new());
    // Nothing crashed, so any detection at all would be a false one —
    // and the departed leaver must not be among the suspects either.
    assert!(
        outcome.false_detections.is_empty(),
        "graceful leave raised the failure rule: {:?}",
        outcome.false_detections
    );
    assert!(outcome.missed.is_empty());
    // The departure actually disseminated: some live peer recorded it.
    let informed = sim
        .actors()
        .filter(|(id, node)| *id != leaver && sim.is_alive(*id) && node.knows_departed(leaver))
        .count();
    assert!(informed > 0, "no peer learned of the departure");
}

#[test]
fn rejoin_with_stale_state_produces_no_false_verdict() {
    // The node crashes, is (correctly) detected, then rejoins with
    // whatever ledgers it crashed with while its peers still carry the
    // crash verdict. Convergence must retract the verdict: no missed
    // entry, no false detection, and the rejoiner participates again.
    let exp = dense_experiment(30, 23);
    let mut sim = exp.build_sim(RadioConfig::bernoulli(0.0), 23);
    let victim = NodeId(7);
    sim.schedule_crash(victim, mid(1));
    sim.schedule_rejoin(victim, mid(4));
    run_for(&mut sim, 10);

    assert!(sim.is_alive(victim), "rejoin took effect");
    let crash_epochs: BTreeMap<NodeId, u64> = [(victim, 1u64)].into_iter().collect();
    let outcome = exp.evaluate(&sim, 10, &crash_epochs);
    assert!(
        outcome.false_detections.is_empty(),
        "stale-state rejoin produced false verdicts: {:?}",
        outcome.false_detections
    );
    // The victim rejoined, so peers owe no knowledge of the old crash.
    assert!(
        outcome.missed.is_empty(),
        "rejoined node still counted as a missed failure: {:?}",
        outcome.missed
    );
    // It was genuinely detected while down.
    assert!(outcome.detection_latency.contains_key(&victim));
    // And its incarnation advanced past the factory value, which is
    // what lets peers distinguish the comeback from the stale past.
    let (_, node) = sim
        .actors()
        .find(|(id, _)| *id == victim)
        .expect("victim actor");
    assert!(node.incarnation() > 0, "rejoin did not bump incarnation");
}

#[test]
fn leaver_rejoin_round_trip_restores_participation() {
    let exp = dense_experiment(24, 31);
    let mut sim = exp.build_sim(RadioConfig::bernoulli(0.0), 31);
    let wanderer = NodeId(3);
    sim.schedule_leave(wanderer, mid(1));
    sim.schedule_rejoin(wanderer, mid(3));
    run_for(&mut sim, 8);

    assert!(sim.is_alive(wanderer));
    assert!(!sim.has_departed(wanderer));
    let outcome = exp.evaluate(&sim, 8, &BTreeMap::new());
    assert!(outcome.false_detections.is_empty());
    // Peers cleared the departure flag once the notice round-tripped.
    let still_marked = sim
        .actors()
        .filter(|(id, node)| *id != wanderer && node.knows_departed(wanderer))
        .count();
    assert_eq!(still_marked, 0, "rejoin left stale departure marks");
}

#[test]
fn churn_scheduling_apis_never_panic() {
    let exp = dense_experiment(20, 41);
    let mut sim = exp.build_sim(RadioConfig::bernoulli(0.1), 41);

    // Garbage node ids: every scheduler must no-op, not panic.
    let bogus = NodeId(9_999);
    sim.schedule_crash(bogus, mid(1));
    sim.schedule_join(bogus, mid(1));
    sim.schedule_leave(bogus, mid(1));
    sim.schedule_rejoin(bogus, mid(1));

    // Run past epoch 3, then schedule in the past: saturates to now.
    run_for(&mut sim, 3);
    let past = SimTime::ZERO;
    let when = sim.schedule_leave(NodeId(2), past);
    assert!(when >= sim.now(), "past timestamp must saturate to now");
    sim.schedule_crash(NodeId(4), past);
    sim.schedule_rejoin(NodeId(5), past); // alive: rejoin is a no-op

    // Dead / departed targets.
    run_for(&mut sim, 4);
    sim.schedule_crash(NodeId(4), mid(5)); // already dead
    sim.schedule_leave(NodeId(4), mid(5)); // dead nodes can't leave
    sim.schedule_join(NodeId(2), mid(5)); // departed, join is for dormants
    run_for(&mut sim, 8);

    // The run completed; the scheduled-but-nonsensical operations all
    // dissolved. Sanity: the legitimate ones took effect.
    assert!(!sim.is_alive(NodeId(4)));
    assert!(sim.has_departed(NodeId(2)));
}

/// Drives sustained churn for `epochs` epochs: node 1 crashes and
/// rejoins on an 8-epoch cycle, node 2 leaves and rejoins on the same
/// cycle, so ledgers (detections, quit lists, relayed notices) keep
/// accruing for the whole run.
fn churn_soak(retention_epochs: u64, epochs: u64) -> Simulator<FdsNode> {
    let config = FdsConfig {
        retention_epochs,
        ..FdsConfig::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let pts = Placement::UniformRect(Rect::square(300.0)).generate(26, &mut rng);
    let topology = Topology::from_positions(pts, 120.0);
    let exp = Experiment::new(topology, config, FormationConfig::default());
    let mut sim = exp.build_sim(RadioConfig::bernoulli(0.0), 77);
    let mut e = 2;
    while e + 6 < epochs {
        sim.schedule_crash(NodeId(1), mid(e));
        sim.schedule_rejoin(NodeId(1), mid(e + 4));
        sim.schedule_leave(NodeId(2), mid(e + 1));
        sim.schedule_rejoin(NodeId(2), mid(e + 5));
        e += 8;
    }
    run_for(&mut sim, epochs);
    sim
}

fn max_detections_ledger(sim: &Simulator<FdsNode>) -> usize {
    sim.actors()
        .map(|(_, node)| node.detections().len())
        .max()
        .unwrap_or(0)
}

#[test]
fn retention_gc_holds_a_detection_ledger_plateau() {
    const RETENTION: u64 = 8;

    // With GC on, every surviving detection is within the window …
    let bounded = churn_soak(RETENTION, 40);
    for (id, node) in bounded.actors() {
        let final_epoch = node.epoch();
        for d in node.detections() {
            assert!(
                d.epoch + RETENTION >= final_epoch,
                "{id}: detection from epoch {} survived past the {} window \
                 (node epoch {})",
                d.epoch,
                RETENTION,
                final_epoch
            );
        }
    }

    // … and the ledger hits a plateau: doubling the run length does
    // not grow it.
    let short = max_detections_ledger(&churn_soak(RETENTION, 24));
    let long = max_detections_ledger(&bounded);
    assert!(
        long <= short,
        "retention ledger grew with run length: {short} -> {long}"
    );

    // Without retention the same workload accretes history without
    // bound — the plateau is the GC's doing, not the workload's.
    let unbounded_short = max_detections_ledger(&churn_soak(0, 24));
    let unbounded_long = max_detections_ledger(&churn_soak(0, 40));
    assert!(
        unbounded_long > unbounded_short,
        "expected unbounded growth without retention: {unbounded_short} -> {unbounded_long}"
    );
    assert!(
        long < unbounded_long,
        "GC did not reduce the ledger: bounded {long} vs unbounded {unbounded_long}"
    );
}

#[test]
fn churned_runs_checkpoint_and_restore_mid_cycle() {
    // A churn-heavy run snapshotted right in the middle of a
    // crash/rejoin cycle restores and finishes identically — the
    // lifecycle state (incarnations, departed sets, dormants) is all
    // part of the snapshot.
    let make = || {
        let exp = dense_experiment(24, 53);
        let mut sim = exp.build_sim(RadioConfig::bernoulli(0.05), 53);
        sim.set_dormant(NodeId(9));
        sim.schedule_join(NodeId(9), mid(3));
        sim.schedule_crash(NodeId(1), mid(1));
        sim.schedule_rejoin(NodeId(1), mid(4));
        sim.schedule_leave(NodeId(2), mid(2));
        sim.enable_trace();
        sim
    };
    let mut straight = make();
    run_for(&mut straight, 8);

    let mut interrupted = make();
    // Stop inside the cycle: after the crash, before the rejoin.
    interrupted.run_until(mid(2));
    let bytes = interrupted.checkpoint().expect("mid-cycle checkpoint");
    let mut resumed: Simulator<FdsNode> = Simulator::restore(&bytes).expect("restore");
    run_for(&mut resumed, 8);

    assert_eq!(
        straight.checkpoint().expect("checkpoint"),
        resumed.checkpoint().expect("checkpoint"),
        "mid-cycle restore diverged"
    );
}
