//! Interference-storm scenario: the channel degrades sharply for a
//! window and then recovers — a common field condition (jamming,
//! weather, competing traffic) that stresses the service's
//! self-stabilization. The FDS has no session state to corrupt: every
//! epoch re-runs the same three rounds, so once the channel recovers
//! the properties recover with it.

use cbfd::cluster::{oracle, FormationConfig};
use cbfd::core::config::FdsConfig;
use cbfd::core::node::FdsNode;
use cbfd::core::profile::build_profiles;
use cbfd::net::sim::Simulator;
use cbfd::prelude::*;

fn build(seed: u64) -> (Topology, Vec<cbfd::core::profile::NodeProfile>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let positions = Placement::UniformRect(Rect::square(400.0)).generate(100, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);
    let view = oracle::form(&topology, &FormationConfig::default());
    let profiles = build_profiles(&view);
    (topology, profiles)
}

#[test]
fn service_recovers_after_an_interference_storm() {
    let (topology, profiles) = build(1);
    let config = FdsConfig::default();
    let phi = config.heartbeat_interval;
    let mut sim = Simulator::new(topology, RadioConfig::bernoulli(0.05), 1, |id| {
        FdsNode::new(profiles[id.index()].clone(), config, 1_000.0)
    });

    // Calm: epochs 0–3.
    sim.run_until(SimTime::ZERO + phi * 4 - SimDuration::from_micros(1));
    let calm_detections: usize = sim.actors().map(|(_, n)| n.detections().len()).sum();
    assert_eq!(calm_detections, 0, "no detections while calm");

    // Storm: epochs 4–6 at 70% loss.
    sim.set_radio(RadioConfig::bernoulli(0.7));
    sim.run_until(SimTime::ZERO + phi * 7 - SimDuration::from_micros(1));
    let storm_detections: usize = sim.actors().map(|(_, n)| n.detections().len()).sum();

    // Recovery: epochs 7–10 back at 5% loss. No *new* false detections
    // should accumulate once the channel recovers.
    sim.set_radio(RadioConfig::bernoulli(0.05));
    sim.run_until(SimTime::ZERO + phi * 11 - SimDuration::from_micros(1));
    let after: usize = sim.actors().map(|(_, n)| n.detections().len()).sum();
    assert_eq!(
        after, storm_detections,
        "the service must stop misfiring once the storm passes"
    );

    // And detection still works post-storm.
    let victim = sim
        .actors()
        .find(|(id, n)| n.profile().head != Some(*id) && n.profile().cluster.is_some())
        .map(|(id, _)| id)
        .unwrap();
    sim.crash_now(victim);
    sim.run_until(SimTime::ZERO + phi * 14 - SimDuration::from_micros(1));
    let detected = sim
        .actors()
        .any(|(_, n)| n.detections().iter().any(|d| d.suspects.contains(&victim)));
    assert!(detected, "post-storm crashes must still be detected");
}

#[test]
fn storm_false_detections_match_the_analysis_regime() {
    // During a 70%-loss storm the false-detection probability is high
    // (the paper's formulas still apply, just far off the plotted
    // range): expect at least some members of smaller clusters to be
    // condemned over three stormy epochs.
    let (topology, profiles) = build(2);
    let config = FdsConfig::default();
    let phi = config.heartbeat_interval;
    let mut sim = Simulator::new(topology, RadioConfig::bernoulli(0.7), 2, |id| {
        FdsNode::new(profiles[id.index()].clone(), config, 1_000.0)
    });
    sim.run_until(SimTime::ZERO + phi * 3 - SimDuration::from_micros(1));
    let detections: usize = sim.actors().map(|(_, n)| n.detections().len()).sum();
    assert!(
        detections > 0,
        "a 70% storm must overwhelm the redundancy occasionally"
    );
}
