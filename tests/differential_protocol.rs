//! Differential suite: the roster-indexed bitmap FDS implementation
//! against the frozen set-based reference (`cbfd::core::reference`).
//!
//! Every case draws a random workload — geometry, channel loss,
//! crashes, sleep windows, unmarked-node joins — and runs it through
//! both implementations with the same seed. The two actors schedule
//! the same timers and broadcast at the same instants, so the
//! simulator consumes its RNG stream identically: traces must be
//! byte-identical, and so must metrics, verdicts (detections and
//! failure views), acting heads, and behaviour counters. The only
//! permitted difference is `bytes_sent` (the bitmap wire layout is
//! smaller); the reference's ledger must instead equal the optimized
//! node's `bytes_sent_id_list` shadow accounting exactly.
//!
//! One residual hazard is deliberately avoided, not asserted away: an
//! unmarked node that gets admitted into *two* clusters (both heads
//! heard its subscription heartbeat) can be saved by a cross-cluster
//! digest reflection in the set-based implementation, while the
//! bitmap node drops heard-bits of foreign-cluster digests (see
//! DESIGN.md §12). Workloads therefore place each unmarked straggler
//! where it reaches members of at most one cluster — the physically
//! sensible setup for stragglers joining distinct clusters — so every
//! admission is unambiguous.

use std::collections::BTreeMap;

use cbfd::cluster::{oracle, ClusterView, FormationConfig};
use cbfd::core::node::{DetectionEvent, FdsNode, NodeStats};
use cbfd::core::profile::{build_profiles, NodeProfile};
use cbfd::core::reference::RefFdsNode;
use cbfd::core::view::FailureView;
use cbfd::net::actor::Actor;
use cbfd::net::energy::EnergyModel;
use cbfd::net::metrics::SimMetrics;
use cbfd::net::sim::Simulator;
use cbfd::net::trace::TraceRecord;
use cbfd::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Everything of a node's final state that must agree between the two
/// implementations (bytes under the id-list layout included; only the
/// live `bytes_sent` ledger is layout-dependent and zeroed out).
#[derive(Debug, Clone, PartialEq)]
struct NodeSummary {
    epoch: u64,
    acting_head: Option<NodeId>,
    known_failed: FailureView,
    detections: Vec<DetectionEvent>,
    stats: NodeStats,
}

/// The common read-out surface of the two protocol actors.
trait ProtocolNode: Actor + Sized {
    fn build(profile: NodeProfile, fds: FdsConfig, capacity: f64) -> Self;
    fn set_sleep(&mut self, plan: Vec<(u64, u64)>);
    fn summary(&self) -> NodeSummary;
}

fn normalized(stats: &NodeStats) -> NodeStats {
    let mut s = *stats;
    s.bytes_sent = 0; // layout-dependent; everything else must agree
    s
}

impl ProtocolNode for FdsNode {
    fn build(profile: NodeProfile, fds: FdsConfig, capacity: f64) -> Self {
        FdsNode::new(profile, fds, capacity)
    }
    fn set_sleep(&mut self, plan: Vec<(u64, u64)>) {
        self.set_sleep_plan(plan);
    }
    fn summary(&self) -> NodeSummary {
        NodeSummary {
            epoch: self.epoch(),
            acting_head: self.acting_head(),
            known_failed: self.known_failed().clone(),
            detections: self.detections().to_vec(),
            stats: normalized(self.stats()),
        }
    }
}

impl ProtocolNode for RefFdsNode {
    fn build(profile: NodeProfile, fds: FdsConfig, capacity: f64) -> Self {
        RefFdsNode::new(profile, fds, capacity)
    }
    fn set_sleep(&mut self, plan: Vec<(u64, u64)>) {
        self.set_sleep_plan(plan);
    }
    fn summary(&self) -> NodeSummary {
        NodeSummary {
            epoch: self.epoch(),
            acting_head: self.acting_head(),
            known_failed: self.known_failed().clone(),
            detections: self.detections().to_vec(),
            stats: normalized(self.stats()),
        }
    }
}

/// One randomized workload, generated once and run through both
/// implementations.
#[derive(Debug, Clone)]
struct Workload {
    topology: Topology,
    profiles: Vec<NodeProfile>,
    fds: FdsConfig,
    p: f64,
    epochs: u64,
    crashes: Vec<(NodeId, u64)>,
    sleeps: Vec<(NodeId, Vec<(u64, u64)>)>,
    seed: u64,
}

fn run_workload<A: ProtocolNode>(w: &Workload) -> (Vec<TraceRecord>, SimMetrics, Vec<NodeSummary>) {
    let phi = w.fds.heartbeat_interval;
    let capacity = EnergyModel::default().initial;
    let profiles = &w.profiles;
    let sleeps = &w.sleeps;
    let fds = w.fds;
    let mut sim = Simulator::new(
        w.topology.clone(),
        RadioConfig::bernoulli(w.p),
        w.seed,
        |id| {
            let mut node = A::build(profiles[id.index()].clone(), fds, capacity);
            if let Some((_, plan)) = sleeps.iter().find(|(s, _)| *s == id) {
                node.set_sleep(plan.clone());
            }
            node
        },
    );
    sim.set_energy_model(EnergyModel::default());
    sim.enable_trace();
    for &(node, epoch) in &w.crashes {
        // Mid-interval, exactly as `Experiment::run` schedules them.
        let at = SimTime::ZERO + phi * epoch + SimDuration::from_micros(phi.as_micros() / 2);
        sim.schedule_crash(node, at);
    }
    sim.run_until(SimTime::ZERO + phi * w.epochs - SimDuration::from_micros(1));
    let trace = sim.trace().records().to_vec();
    let metrics = sim.metrics().clone();
    let summaries = w
        .topology
        .node_ids()
        .map(|id| sim.actor(id).summary())
        .collect();
    (trace, metrics, summaries)
}

fn random_positions(rng: &mut StdRng, n: usize, side: f64) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
        .collect()
}

/// A fully-marked workload: random geometry, loss, crashes, and (on
/// odd cases) aggregation plus a couple of announced sleep windows.
fn marked_workload(case: u64, rng: &mut StdRng, storm: bool) -> Workload {
    let n = rng.random_range(8usize..40);
    let side = rng.random_range(250.0..500.0);
    let positions = random_positions(rng, n, side);
    let topology = Topology::from_positions(positions, 100.0);
    let view = oracle::form(&topology, &FormationConfig::default());
    let profiles = build_profiles(&view);

    let fds = FdsConfig {
        aggregation: case % 2 == 1,
        ..Default::default()
    };
    let epochs = rng.random_range(4u64..8);
    let p = if storm {
        rng.random_range(0.3..0.55)
    } else {
        rng.random_range(0.0..0.25)
    };

    let crash_count = rng.random_range(0usize..3);
    let crashes = (0..crash_count)
        .map(|_| {
            (
                NodeId(rng.random_range(0u32..n as u32)),
                rng.random_range(1u64..epochs - 1),
            )
        })
        .collect();

    let mut sleeps = Vec::new();
    if !storm && case % 3 == 2 {
        let sleeper = NodeId(rng.random_range(0u32..n as u32));
        let from = rng.random_range(1u64..epochs - 1);
        sleeps.push((sleeper, vec![(from, from + 1)]));
    }

    Workload {
        topology,
        profiles,
        fds,
        p,
        epochs,
        crashes,
        sleeps,
        seed: 0xD1FF_0000 + case,
    }
}

/// A membership-churn workload: clusters formed over the marked nodes
/// only, plus unmarked stragglers whose heartbeats act as join
/// subscriptions, under light loss (p ≤ 0.15) and optional crashes.
/// Each straggler is placed where it reaches members of at most one
/// cluster, and pairwise out of range of other stragglers, so no node
/// can be admitted twice (see the module docs).
fn join_workload(case: u64, rng: &mut StdRng) -> Workload {
    let marked = rng.random_range(8usize..30);
    let side = rng.random_range(300.0..450.0);
    let mut positions = random_positions(rng, marked, side);
    let marked_topology = Topology::from_positions(positions.clone(), 100.0);
    let marked_view = oracle::form(&marked_topology, &FormationConfig::default());

    let unmarked = rng.random_range(1usize..4);
    let mut placed: Vec<Point> = Vec::new();
    let mut attempts = 0;
    while placed.len() < unmarked && attempts < 500 {
        attempts += 1;
        let candidate = Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side));
        let pairwise_ok = placed
            .iter()
            .all(|p| (p.x - candidate.x).hypot(p.y - candidate.y) > 110.0);
        // Clusters whose members could hear the straggler (with a
        // margin over the 100.0 radio range).
        let reachable: std::collections::BTreeSet<ClusterId> = (0..marked)
            .filter(|i| {
                let p = positions[*i];
                (p.x - candidate.x).hypot(p.y - candidate.y) <= 110.0
            })
            .filter_map(|i| marked_view.cluster_of(NodeId(i as u32)))
            .collect();
        if pairwise_ok && reachable.len() <= 1 {
            placed.push(candidate);
        }
    }
    positions.extend(placed.iter().copied());
    let unmarked = placed.len();
    let topology = Topology::from_positions(positions, 100.0);

    let clusters: BTreeMap<_, _> = marked_view
        .clusters()
        .map(|c| (c.id(), c.clone()))
        .collect();
    let mut affiliation: Vec<Option<ClusterId>> = (0..marked)
        .map(|i| marked_view.cluster_of(NodeId(i as u32)))
        .collect();
    affiliation.extend(std::iter::repeat_n(None, unmarked));
    let view = ClusterView::from_parts(clusters, affiliation, BTreeMap::new());
    let profiles = build_profiles(&view);

    let fds = FdsConfig {
        aggregation: case.is_multiple_of(2),
        ..Default::default()
    };
    let epochs = rng.random_range(4u64..8);
    let p = rng.random_range(0.0..0.15);
    let crash_count = rng.random_range(0usize..2);
    let crashes = (0..crash_count)
        .map(|_| {
            (
                NodeId(rng.random_range(0u32..marked as u32)),
                rng.random_range(1u64..epochs - 1),
            )
        })
        .collect();

    Workload {
        topology,
        profiles,
        fds,
        p,
        epochs,
        crashes,
        sleeps: Vec::new(),
        seed: 0x101D_0000 + case,
    }
}

#[test]
fn bitmap_and_set_based_implementations_agree_on_randomized_workloads() {
    const CASES: u64 = 129;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD1FF_C0DE ^ (case * 0x9E37_79B9));
        let workload = match case % 3 {
            0 => marked_workload(case, &mut rng, false),
            1 => marked_workload(case, &mut rng, true), // lossy storm
            _ => join_workload(case, &mut rng),
        };

        let (new_trace, new_metrics, new_nodes) = run_workload::<FdsNode>(&workload);
        let (ref_trace, ref_metrics, ref_nodes) = run_workload::<RefFdsNode>(&workload);

        assert_eq!(
            new_trace.len(),
            ref_trace.len(),
            "case {case}: trace lengths diverge"
        );
        for (i, (a, b)) in new_trace.iter().zip(&ref_trace).enumerate() {
            assert_eq!(a, b, "case {case}: trace record {i} diverges");
        }
        assert_eq!(new_metrics, ref_metrics, "case {case}: metrics diverge");
        for (i, (a, b)) in new_nodes.iter().zip(&ref_nodes).enumerate() {
            assert_eq!(a, b, "case {case}: node {i} final state diverges");
        }
    }
}

#[test]
fn id_list_byte_shadow_accounting_matches_reference_exactly() {
    // Beyond per-node equality (covered above), pin the aggregate:
    // summed over a workload, the optimized node's id-list shadow
    // ledger is exactly what the set-based implementation transmits.
    let mut rng = StdRng::seed_from_u64(0xB17E5);
    let workload = marked_workload(7, &mut rng, false);
    let (_, _, new_nodes) = run_workload::<FdsNode>(&workload);
    let (_, _, ref_nodes) = run_workload::<RefFdsNode>(&workload);
    let new_total: u64 = new_nodes.iter().map(|n| n.stats.bytes_sent_id_list).sum();
    let ref_total: u64 = ref_nodes.iter().map(|n| n.stats.bytes_sent_id_list).sum();
    assert!(new_total > 0, "workload transmitted nothing");
    assert_eq!(new_total, ref_total);
}
