//! Host migration: the FDS over a moving population, run as
//! quasi-static phases (move → reconcile clustering → detect), per the
//! paper's Section 2.1 note that the framework extends to mobile
//! hosts via stable clustering.

use cbfd::cluster::{invariants, maintenance, oracle};
use cbfd::core::config::FdsConfig;
use cbfd::net::mobility::{RandomWaypoint, WaypointConfig};
use cbfd::prelude::*;

#[test]
fn reconcile_preserves_invariants_across_motion() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let bounds = Rect::square(500.0);
    let config = FormationConfig::default();
    let mut walkers = RandomWaypoint::new(
        WaypointConfig {
            bounds,
            min_speed: 2.0,
            max_speed: 8.0,
            pause_secs: 1.0,
        },
        120,
        &mut rng,
    );
    let mut topology = Topology::from_positions(walkers.snapshot(), 100.0);
    let mut view = oracle::form(&topology, &config);

    for phase in 0..10 {
        walkers.advance(20.0, &mut rng);
        topology = Topology::from_positions(walkers.snapshot(), 100.0);
        view = maintenance::reconcile(&topology, &config, &view);
        let violations = invariants::check(&topology, &view);
        assert!(violations.is_empty(), "phase {phase}: {violations:?}");
    }
}

#[test]
fn slow_motion_keeps_most_affiliations_stable() {
    // Cluster stability: at pedestrian speeds over one reconciliation
    // interval, the overwhelming majority of hosts stay put.
    // Seed chosen for a well-mixed initial placement under the
    // vendored generator (drift is bounded either way; a pathological
    // draw can still shear a border cluster).
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let bounds = Rect::square(500.0);
    let config = FormationConfig::default();
    let mut walkers = RandomWaypoint::new(WaypointConfig::slow(bounds), 150, &mut rng);
    let topo_before = Topology::from_positions(walkers.snapshot(), 100.0);
    let view_before = oracle::form(&topo_before, &config);

    walkers.advance(10.0, &mut rng); // at most 20 m of drift
    let topo_after = Topology::from_positions(walkers.snapshot(), 100.0);
    let view_after = maintenance::reconcile(&topo_after, &config, &view_before);

    let stable = topo_after
        .node_ids()
        .filter(|n| view_before.cluster_of(*n) == view_after.cluster_of(*n))
        .count();
    assert!(
        stable as f64 / 150.0 > 0.9,
        "only {stable}/150 affiliations survived slow motion"
    );
}

#[test]
fn detection_works_across_mobility_phases() {
    // Run the FDS between moves; a node that crashes in phase 2 must
    // still be detected by its (possibly reshuffled) cluster.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let bounds = Rect::square(400.0);
    let formation = FormationConfig::default();
    let mut walkers = RandomWaypoint::new(WaypointConfig::slow(bounds), 100, &mut rng);
    let mut view = oracle::form(
        &Topology::from_positions(walkers.snapshot(), 100.0),
        &formation,
    );
    let victim = NodeId(31);
    let mut detected = false;

    for phase in 0u64..4 {
        let topology = Topology::from_positions(walkers.snapshot(), 100.0);
        view = maintenance::reconcile(&topology, &formation, &view);
        let experiment = Experiment::with_view(topology, view.clone(), FdsConfig::default());
        let crashes = if phase == 2 {
            vec![PlannedCrash {
                epoch: 0,
                node: victim,
            }]
        } else {
            Vec::new()
        };
        let outcome = experiment.run(0.05, 4, &crashes, 100 + phase);
        if outcome.detection_latency.contains_key(&victim) {
            detected = true;
        }
        // The fail-stop model persists across phases: once the victim
        // crashed, drop it from the roaming population going forward.
        if phase >= 2 {
            // (The walker keeps moving but the node is dead; for the
            // purpose of the next phases we simply keep it in the
            // topology — a dead node is silent, which is what the
            // protocol sees anyway. Here we only check detection in
            // the crash phase.)
            break;
        }
        walkers.advance(15.0, &mut rng);
    }
    assert!(detected, "the crash must be detected in its phase");
}

#[test]
fn fast_motion_reshuffles_clusters_but_stays_sound() {
    // Vehicular speeds: affiliations churn heavily, yet every
    // reconciled view remains structurally valid and (in a connected
    // field) keeps coverage.
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let bounds = Rect::square(400.0);
    let config = FormationConfig::default();
    let mut walkers = RandomWaypoint::new(
        WaypointConfig {
            bounds,
            min_speed: 20.0,
            max_speed: 40.0,
            pause_secs: 0.0,
        },
        120,
        &mut rng,
    );
    let mut view = oracle::form(
        &Topology::from_positions(walkers.snapshot(), 100.0),
        &config,
    );
    for _ in 0..6 {
        walkers.advance(10.0, &mut rng);
        let topology = Topology::from_positions(walkers.snapshot(), 100.0);
        view = maintenance::reconcile(&topology, &config, &view);
        assert!(invariants::check(&topology, &view).is_empty());
        for n in topology.node_ids() {
            if topology.degree(n) > 0 {
                assert!(view.cluster_of(n).is_some(), "{n} left uncovered");
            }
        }
    }
}
