//! FaultPlan-form chaos scenarios: the cascade and harsh-channel
//! fault-injection tests, migrated from `tests/fault_injection.rs`
//! onto the declarative chaos schedule (same networks, same seeds,
//! same assertions), now with the online invariant monitor attached —
//! plus end-to-end determinism checks for the fuzzing pipeline.

use cbfd::chaos::Monitor;
use cbfd::cluster::Role;
use cbfd::core::config::FdsConfig;
use cbfd::net::chaos::{FaultPlan, FaultPrimitive};
use cbfd::prelude::*;

fn dense_experiment(seed: u64, n: usize, side: f64) -> Experiment {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let positions = Placement::UniformRect(Rect::square(side)).generate(n, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);
    Experiment::new(topology, FdsConfig::default(), FormationConfig::default())
}

/// Runs `plan` with a stride-`64` monitor attached and asserts no hard
/// invariant violation occurred.
fn run_monitored(
    exp: &Experiment,
    plan: &FaultPlan,
    epochs: u64,
    seed: u64,
) -> cbfd::core::service::FdsOutcome {
    let mut monitor = Monitor::new(exp.topology().clone(), exp.view().clone(), 64);
    let outcome = exp.run_plan(plan, epochs, seed, &mut |sim, ev| monitor.observe(sim, ev));
    assert!(
        monitor.violations().is_empty(),
        "hard invariant violations: {:?}",
        monitor
            .violations()
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
    );
    outcome
}

#[test]
fn cascade_of_crashes_is_fully_reported() {
    // Migrated from tests/fault_injection.rs: one ordinary member from
    // each of eight distinct clusters, crashing one epoch apart — now a
    // single `Cascade` primitive landing at the same mid-interval
    // instants `Experiment::run` used for epochs 1..=8.
    let exp = dense_experiment(3, 220, 550.0);
    assert_eq!(exp.view().backbone_components().len(), 1);
    let victims: Vec<NodeId> = exp
        .view()
        .clusters()
        .filter_map(|c| {
            c.non_head_members()
                .find(|m| exp.view().role_of(*m) == Role::Ordinary)
        })
        .take(8)
        .collect();
    assert_eq!(
        victims.len(),
        8,
        "need eight clusters with ordinary members"
    );

    let phi = FdsConfig::default().heartbeat_interval;
    let plan = FaultPlan {
        baseline_p: 0.1,
        horizon: SimTime::ZERO + phi * 14,
        primitives: vec![FaultPrimitive::Cascade {
            start: SimTime::ZERO + phi + SimDuration::from_micros(phi.as_micros() / 2),
            interval: phi,
            nodes: victims.clone(),
        }],
    };
    let outcome = run_monitored(&exp, &plan, 14, 3);
    for v in &victims {
        assert!(
            outcome.detection_latency.contains_key(v),
            "{v} undetected in cascade"
        );
    }
    assert!(
        outcome.completeness > 0.99,
        "completeness {}; missed {:?}",
        outcome.completeness,
        outcome.missed.len()
    );
}

#[test]
fn harsh_channel_extremes_do_not_wedge_the_service() {
    // Migrated from tests/fault_injection.rs: p = 0.6 is far beyond
    // the paper's range; the run must still terminate, count sensibly,
    // and keep probabilities in range. The harsh channel is the plan's
    // baseline; the single crash keeps its classic epoch-2 instant.
    let exp = dense_experiment(5, 100, 400.0);
    let plan = exp.plan_from_crashes(
        0.6,
        8,
        &[PlannedCrash {
            epoch: 2,
            node: NodeId(33),
        }],
    );
    let outcome = run_monitored(&exp, &plan, 8, 5);
    assert!(outcome.completeness >= 0.0 && outcome.completeness <= 1.0);
    assert!(outcome.incompleteness_rate() <= 1.0);
    assert!(outcome.metrics.transmissions > 0);
}

#[test]
fn migrated_cascade_matches_the_classic_entry_point() {
    // The FaultPlan form is not merely similar: a crash-only plan at
    // the classic instants replays `Experiment::run` byte for byte.
    let exp = dense_experiment(3, 60, 300.0);
    let crashes = [
        PlannedCrash {
            epoch: 1,
            node: NodeId(7),
        },
        PlannedCrash {
            epoch: 2,
            node: NodeId(11),
        },
    ];
    let classic = exp.run(0.1, 6, &crashes, 17);
    let plan = exp.plan_from_crashes(0.1, 6, &crashes);
    let chaotic = exp.run_plan(&plan, 6, 17, &mut |_, _| {});
    assert_eq!(classic.metrics, chaotic.metrics);
    assert_eq!(classic.false_detections, chaotic.false_detections);
    assert_eq!(classic.completeness, chaotic.completeness);
    assert_eq!(classic.detection_latency, chaotic.detection_latency);
}

#[test]
fn fuzzer_artifacts_shrink_and_replay_deterministically() {
    // End-to-end over the real FDS: take a generated plan that hurts
    // completeness, shrink it against that oracle, and check the
    // shrunk artifact round-trips through text and replays to the
    // same outcome every time.
    use cbfd::net::chaos::{shrink, PlanConfig};

    let exp = dense_experiment(8, 60, 350.0);
    let phi = FdsConfig::default().heartbeat_interval;
    let config = PlanConfig {
        nodes: 60,
        horizon: SimTime::ZERO + phi * 4,
        baseline_p: 0.1,
        max_primitives: 6,
        max_cascade: 6,
        churn: false,
    };
    let hurts = |plan: &FaultPlan| {
        let outcome = exp.run_plan(plan, 4, 8, &mut |_, _| {});
        outcome.completeness < 0.999 || !outcome.false_detections.is_empty()
    };
    let plan = (0..64u64)
        .map(|s| FaultPlan::generate(s, &config))
        .find(|p| hurts(p))
        .expect("some chaotic plan degrades the paper properties");

    let shrunk = shrink(&plan, hurts, 64);
    assert!(hurts(&shrunk.plan), "shrunk plan still reproduces");
    assert!(shrunk.plan.primitives.len() <= plan.primitives.len());
    // Deterministic shrinking and a faithful artifact round trip.
    assert_eq!(shrink(&plan, hurts, 64), shrunk);
    let reparsed = FaultPlan::from_text(&shrunk.plan.to_text()).expect("artifact parses");
    assert_eq!(reparsed, shrunk.plan);
    assert!(hurts(&reparsed), "replayed artifact reproduces");
}
