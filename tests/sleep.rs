//! Sleep/wakeup power management — the extension the paper's
//! concluding remarks call for: "sleep mode may cause false
//! detections. Accordingly, we plan to investigate … deriving
//! algorithms to reduce the likelihood of sleep-mode-caused false
//! detection."
//!
//! These tests demonstrate both halves: unannounced sleepers *are*
//! falsely condemned (the problem), and announced sleep with one-hop
//! notice relaying prevents it (the fix).

use cbfd::core::config::FdsConfig;
use cbfd::core::service::PlannedSleep;
use cbfd::prelude::*;

fn experiment(seed: u64, config: FdsConfig) -> Experiment {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let positions = Placement::UniformRect(Rect::square(350.0)).generate(80, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);
    Experiment::new(topology, config, FormationConfig::default())
}

fn ordinary_member(exp: &Experiment) -> NodeId {
    exp.view()
        .clusters()
        .flat_map(|c| c.non_head_members().collect::<Vec<_>>())
        .find(|m| exp.view().role_of(*m) == cbfd::cluster::Role::Ordinary)
        .expect("an ordinary member exists")
}

#[test]
fn unannounced_sleep_causes_false_detection() {
    let config = FdsConfig {
        sleep_announcements: false,
        ..FdsConfig::default()
    };
    let exp = experiment(1, config);
    let sleeper = ordinary_member(&exp);
    let sleep = [PlannedSleep {
        node: sleeper,
        from_epoch: 2,
        until_epoch: 5,
    }];
    let outcome = exp.run_with_sleep(0.0, 8, &[], &sleep, 1);
    assert!(
        outcome
            .false_detections
            .iter()
            .any(|fd| fd.suspect == sleeper),
        "an unannounced sleeper must be falsely condemned: {:?}",
        outcome.false_detections
    );
}

#[test]
fn announced_sleep_prevents_false_detection() {
    let exp = experiment(1, FdsConfig::default());
    let sleeper = ordinary_member(&exp);
    let sleep = [PlannedSleep {
        node: sleeper,
        from_epoch: 2,
        until_epoch: 5,
    }];
    let outcome = exp.run_with_sleep(0.0, 8, &[], &sleep, 1);
    assert!(
        outcome.accurate(),
        "announced sleep must not trigger detections: {:?}",
        outcome.false_detections
    );
}

#[test]
fn announced_sleep_is_robust_to_loss_via_relaying() {
    // The notice is broadcast once by the sleeper and relayed once by
    // every member that hears it, so the head misses it only if *all*
    // copies are lost. Across several seeds at p = 0.2 the sleeper
    // should (almost) never be condemned.
    let mut condemnations = 0;
    for seed in 0..8 {
        let exp = experiment(2, FdsConfig::default());
        let sleeper = ordinary_member(&exp);
        let sleep = [PlannedSleep {
            node: sleeper,
            from_epoch: 2,
            until_epoch: 5,
        }];
        let outcome = exp.run_with_sleep(0.2, 8, &[], &sleep, seed);
        condemnations += outcome
            .false_detections
            .iter()
            .filter(|fd| fd.suspect == sleeper)
            .count();
    }
    assert!(
        condemnations <= 1,
        "relayed notices should survive p=0.2: {condemnations} condemnations"
    );
}

#[test]
fn sleeper_catches_up_on_failures_after_waking() {
    // A crash happens while the sleeper's radio is off; after waking
    // it recovers the knowledge from the cumulative updates.
    let exp = experiment(3, FdsConfig::default());
    let sleeper = ordinary_member(&exp);
    let victim = exp
        .view()
        .clusters()
        .flat_map(|c| c.non_head_members().collect::<Vec<_>>())
        .find(|m| *m != sleeper)
        .unwrap();
    let sleep = [PlannedSleep {
        node: sleeper,
        from_epoch: 2,
        until_epoch: 6,
    }];
    let crashes = [PlannedCrash {
        epoch: 3,
        node: victim,
    }];
    let outcome = exp.run_with_sleep(0.0, 10, &crashes, &sleep, 3);
    assert!(
        !outcome
            .missed
            .iter()
            .any(|m| m.observer == sleeper && m.failed == victim),
        "the woken sleeper must have caught up on {victim}"
    );
}

#[test]
fn sleeping_saves_energy() {
    let exp = experiment(4, FdsConfig::default());
    let sleeper = ordinary_member(&exp);
    let sleep = [PlannedSleep {
        node: sleeper,
        from_epoch: 1,
        until_epoch: 7,
    }];
    let quiet = exp.run_with_sleep(0.0, 8, &[], &sleep, 4);
    let busy = exp.run(0.0, 8, &[], 4);
    // The sleeper transmits far fewer times when asleep 6/8 epochs.
    let tx_sleeping = quiet.metrics.tx_per_node[sleeper.index()];
    let tx_awake = busy.metrics.tx_per_node[sleeper.index()];
    assert!(
        tx_sleeping < tx_awake / 2,
        "sleep must cut transmissions: {tx_sleeping} vs {tx_awake}"
    );
}

#[test]
fn sleeping_head_is_taken_over_even_when_announced() {
    // Sleeping is no excuse for the cluster authority: the current
    // design excludes sleepers from *member* judgement but a sleeping
    // head stops emitting updates, so the deputy takes over. This
    // documents the behaviour (the paper leaves head sleep policy
    // open).
    let exp = experiment(5, FdsConfig::default());
    let cluster = exp
        .view()
        .clusters()
        .find(|c| c.first_deputy().is_some() && c.len() >= 5)
        .unwrap()
        .clone();
    let head = cluster.head();
    let sleep = [PlannedSleep {
        node: head,
        from_epoch: 2,
        until_epoch: 6,
    }];
    let outcome = exp.run_with_sleep(0.0, 8, &[], &sleep, 5);
    let takeover = outcome
        .false_detections
        .iter()
        .any(|fd| fd.suspect == head && fd.takeover);
    assert!(
        takeover,
        "a silent head is judged failed by its deputy: {:?}",
        outcome.false_detections
    );
}

#[test]
fn sleeping_deputy_passes_judgement_duty_to_the_next_rank() {
    // Pinned cluster: head 0, deputies [1, 2] in rank order. Deputy 1
    // announces sleep; the head then crashes. Deputy 2 must judge and
    // take over — a sleeping judge must not leave the cluster
    // headless.
    use cbfd::cluster::{Cluster, ClusterView};
    use std::collections::BTreeMap;

    let positions = vec![
        Point::new(0.0, 0.0),  // 0 head
        Point::new(40.0, 0.0), // 1 first deputy (will sleep)
        Point::new(0.0, 40.0), // 2 second deputy
        Point::new(-40.0, 0.0),
        Point::new(0.0, -40.0),
    ];
    let topology = Topology::from_positions(positions, 100.0);
    let cluster = Cluster::new(
        NodeId(0),
        (0..5).map(NodeId).collect(),
        vec![NodeId(1), NodeId(2)],
    );
    let cid = cluster.id();
    let mut clusters = BTreeMap::new();
    clusters.insert(cid, cluster);
    let view = ClusterView::from_parts(clusters, vec![Some(cid); 5], BTreeMap::new());
    let exp = Experiment::with_view(topology, view, FdsConfig::default());

    let sleep = [PlannedSleep {
        node: NodeId(1),
        from_epoch: 2,
        until_epoch: 8,
    }];
    let crashes = [PlannedCrash {
        epoch: 3,
        node: NodeId(0),
    }];
    let outcome = exp.run_with_sleep(0.0, 8, &crashes, &sleep, 11);
    let takeover = outcome.detection_latency.contains_key(&NodeId(0));
    assert!(takeover, "the second deputy must judge the dead head");
    // And the sleeper itself must not be condemned (it announced).
    assert!(
        !outcome
            .false_detections
            .iter()
            .any(|fd| fd.suspect == NodeId(1)),
        "{:?}",
        outcome.false_detections
    );
}
