//! Group-membership subscription (feature F5): unmarked nodes inside
//! an established cluster are admitted when the clusterhead hears
//! their heartbeats, and participate fully from the next epoch.

use cbfd::cluster::{Cluster, ClusterView};
use cbfd::core::config::FdsConfig;
use cbfd::prelude::*;
use std::collections::BTreeMap;

/// Ten nodes in one cluster around a central head, plus node 10 that
/// is *inside* the cluster disk but was deliberately left out of the
/// formation (e.g. it landed after the clusters formed).
fn late_arrival_setup() -> (Topology, ClusterView) {
    let mut positions: Vec<Point> = vec![Point::new(0.0, 0.0)];
    for i in 1..10 {
        let angle = i as f64 * std::f64::consts::TAU / 9.0;
        positions.push(Point::new(70.0 * angle.cos(), 70.0 * angle.sin()));
    }
    positions.push(Point::new(30.0, 10.0)); // the late arrival, NodeId(10)
    let topology = Topology::from_positions(positions, 100.0);

    let members: Vec<NodeId> = (0..10).map(NodeId).collect();
    let cluster = Cluster::new(NodeId(0), members, vec![NodeId(1)]);
    let cid = cluster.id();
    let mut clusters = BTreeMap::new();
    clusters.insert(cid, cluster);
    let mut affiliation = vec![Some(cid); 10];
    affiliation.push(None); // node 10 unmarked
    let view = ClusterView::from_parts(clusters, affiliation, BTreeMap::new());
    (topology, view)
}

#[test]
fn unmarked_node_is_admitted_and_counted() {
    let (topology, view) = late_arrival_setup();
    let experiment = Experiment::with_view(topology, view, FdsConfig::default());
    let outcome = experiment.run(0.0, 4, &[], 1);
    assert_eq!(outcome.joins, 1, "exactly one subscription to honour");
    assert!(outcome.accurate(), "{:?}", outcome.false_detections);
}

#[test]
fn admitted_node_learns_about_later_failures() {
    let (topology, view) = late_arrival_setup();
    let experiment = Experiment::with_view(topology, view, FdsConfig::default());
    // Node 5 crashes *after* node 10 has been admitted; completeness
    // counts node 10 as an observer once it is affiliated.
    let outcome = experiment.run(
        0.0,
        6,
        &[PlannedCrash {
            epoch: 2,
            node: NodeId(5),
        }],
        2,
    );
    assert_eq!(outcome.joins, 1);
    assert!(outcome.detection_latency.contains_key(&NodeId(5)));
    assert_eq!(
        outcome.completeness, 1.0,
        "the admitted node must be informed too: {:?}",
        outcome.missed
    );
}

#[test]
fn admitted_node_is_monitored_and_its_crash_detected() {
    let (topology, view) = late_arrival_setup();
    let experiment = Experiment::with_view(topology, view, FdsConfig::default());
    // The late arrival joins at epoch 0 and dies at epoch 2: the head
    // must have started expecting its heartbeats.
    let outcome = experiment.run(
        0.0,
        6,
        &[PlannedCrash {
            epoch: 2,
            node: NodeId(10),
        }],
        3,
    );
    assert_eq!(outcome.joins, 1);
    assert!(
        outcome.detection_latency.contains_key(&NodeId(10)),
        "the admitted node's crash must be detected"
    );
}

#[test]
fn admission_can_be_disabled() {
    let (topology, view) = late_arrival_setup();
    let config = FdsConfig {
        admit_unmarked: false,
        ..FdsConfig::default()
    };
    let experiment = Experiment::with_view(topology, view, config);
    let outcome = experiment.run(0.0, 4, &[], 4);
    assert_eq!(outcome.joins, 0, "admission disabled");
}

#[test]
fn admission_survives_message_loss_via_repeated_epochs() {
    // Open-endedness: even if the subscription heartbeat or the
    // announcing update is lost, later epochs retry, so the node joins
    // with overwhelming probability within a handful of intervals.
    let (topology, view) = late_arrival_setup();
    let experiment = Experiment::with_view(topology, view, FdsConfig::default());
    let outcome = experiment.run(0.3, 10, &[], 5);
    assert!(
        outcome.joins >= 1,
        "the subscription must eventually be honoured under loss"
    );
}
