//! Thread-count-invariance regression tests.
//!
//! Every parallel entry point must produce **byte-identical** results
//! for any worker count — workers ∈ {1, 2, max} here — because work
//! is sharded by fixed boundaries with per-shard derived seeds and
//! merged in input order (see `cbfd_net::par`). Worker counts are
//! passed explicitly, never via `CBFD_WORKERS`, so the tests cannot
//! race on the environment.

use cbfd::analysis::montecarlo;
use cbfd::net::par;
use cbfd::prelude::*;

fn worker_counts() -> [usize; 3] {
    [1, 2, par::default_workers().max(3)]
}

/// Enough trials to span multiple shards so the merge path is hit.
const TRIALS: u64 = montecarlo::SHARD_SIZE * 2 + 1234;

#[test]
fn all_mc_estimators_are_worker_count_invariant() {
    let [w1, w2, wmax] = worker_counts();
    let estimates = |workers: usize| {
        [
            montecarlo::false_detection_with_workers(50, 0.5, TRIALS, 7, workers),
            montecarlo::false_detection_direct_with_workers(50, 0.5, TRIALS, 11, workers),
            montecarlo::ch_false_detection_with_workers(50, 0.5, 0.5, TRIALS, 13, workers),
            montecarlo::incompleteness_with_workers(50, 0.4, TRIALS, 17, workers),
            montecarlo::dch_reach_miss_with_workers(75, 0.3, 0.5, 1.0, TRIALS, 23, workers),
        ]
    };
    let base = estimates(w1);
    assert_eq!(base, estimates(w2), "workers=2 diverged from workers=1");
    assert_eq!(
        base,
        estimates(wmax),
        "workers={wmax} diverged from workers=1"
    );
}

#[test]
fn run_many_is_worker_count_invariant() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let positions = Placement::UniformRect(Rect::square(450.0)).generate(120, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);
    let exp = Experiment::new(topology, FdsConfig::default(), FormationConfig::default());
    let crashes = [PlannedCrash {
        epoch: 1,
        node: NodeId(17),
    }];
    let seeds: Vec<u64> = (0..7).collect();
    let [w1, w2, wmax] = worker_counts();

    let base = exp.run_many_with_workers(0.15, 4, &crashes, &seeds, w1);
    for workers in [w2, wmax] {
        let other = exp.run_many_with_workers(0.15, 4, &crashes, &seeds, workers);
        assert_eq!(base.len(), other.len());
        for (a, b) in base.iter().zip(&other) {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "run_many outcome diverged at workers={workers}"
            );
        }
    }
    // And the default-worker entry point agrees with the explicit one.
    let default = exp.run_many(0.15, 4, &crashes, &seeds);
    assert_eq!(format!("{:?}", base[0]), format!("{:?}", default[0]));
}

#[test]
fn par_map_preserves_order_for_any_worker_count() {
    let items: Vec<u64> = (0..100).collect();
    let f = |i: usize, &x: &u64| (i as u64) * 1_000 + x;
    let base = par::par_map(1, &items, f);
    for workers in [2, 4, 16] {
        assert_eq!(base, par::par_map(workers, &items, f));
    }
}
