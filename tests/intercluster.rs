//! Focused tests of the Section 4.3 inter-cluster forwarding
//! machinery: implicit acknowledgments, head retransmission, and
//! backup-gateway takeover.

use cbfd::cluster::view::{ClusterPair, GatewayLink};
use cbfd::cluster::{Cluster, ClusterView};
use cbfd::core::config::FdsConfig;
use cbfd::prelude::*;
use std::collections::BTreeMap;

/// Two clusters joined by one gateway and one backup gateway, built
/// explicitly so every role is pinned:
///
/// ```text
///   C(n0): head 0 at (0,0),   members 1 (60,0), 2 (60,30), 5 (-50,0)
///   C(n3): head 3 at (160,0), members 4 (120,0), 6 (210,0)
///   gateway: 1 (hears both heads); backup: 2 (hears both heads)
/// ```
fn two_cluster_fixture() -> (Topology, ClusterView) {
    let positions = vec![
        Point::new(0.0, 0.0),   // 0 head A
        Point::new(60.0, 0.0),  // 1 gateway
        Point::new(60.0, 30.0), // 2 backup gateway
        Point::new(160.0, 0.0), // 3 head B
        Point::new(120.0, 0.0), // 4 member B
        Point::new(-50.0, 0.0), // 5 member A (far side)
        Point::new(210.0, 0.0), // 6 member B (far side)
    ];
    let topology = Topology::from_positions(positions, 110.0);
    // Role preconditions.
    assert!(topology.linked(NodeId(1), NodeId(0)) && topology.linked(NodeId(1), NodeId(3)));
    assert!(topology.linked(NodeId(2), NodeId(0)) && topology.linked(NodeId(2), NodeId(3)));
    assert!(
        !topology.linked(NodeId(5), NodeId(3)),
        "5 must need the backbone"
    );

    let a = Cluster::new(
        NodeId(0),
        vec![NodeId(0), NodeId(1), NodeId(2), NodeId(5)],
        vec![NodeId(2)],
    );
    let b = Cluster::new(
        NodeId(3),
        vec![NodeId(3), NodeId(4), NodeId(6)],
        vec![NodeId(4)],
    );
    let (ca, cb) = (a.id(), b.id());
    let mut clusters = BTreeMap::new();
    clusters.insert(ca, a);
    clusters.insert(cb, b);
    let affiliation = vec![
        Some(ca),
        Some(ca),
        Some(ca),
        Some(cb),
        Some(cb),
        Some(ca),
        Some(cb),
    ];
    let mut gateways = BTreeMap::new();
    gateways.insert(
        ClusterPair::new(ca, cb),
        GatewayLink {
            primary: NodeId(1),
            backups: vec![NodeId(2)],
        },
    );
    (
        topology,
        ClusterView::from_parts(clusters, affiliation, gateways),
    )
}

#[test]
fn lossless_forwarding_needs_no_retransmission() {
    let (topology, view) = two_cluster_fixture();
    let exp = Experiment::with_view(topology, view, FdsConfig::default());
    // Crash the far member of cluster B; its report must reach the far
    // member of cluster A over the backbone.
    let outcome = exp.run(
        0.0,
        6,
        &[PlannedCrash {
            epoch: 1,
            node: NodeId(6),
        }],
        1,
    );
    assert_eq!(outcome.completeness, 1.0, "missed: {:?}", outcome.missed);
    assert_eq!(
        outcome.retransmissions, 0,
        "implicit acks must suppress retransmission on a clean channel"
    );
    assert!(outcome.reports >= 1, "the gateway must have forwarded");
}

#[test]
fn dead_primary_gateway_is_covered_by_the_backup() {
    let (topology, view) = two_cluster_fixture();
    let exp = Experiment::with_view(topology, view, FdsConfig::default());
    let crashes = [
        PlannedCrash {
            epoch: 1,
            node: NodeId(1),
        }, // the primary gateway
        PlannedCrash {
            epoch: 3,
            node: NodeId(6),
        }, // far member of B
    ];
    let outcome = exp.run(0.0, 8, &crashes, 2);
    assert!(
        outcome.detection_latency.contains_key(&NodeId(6)),
        "B's head must detect its member"
    );
    assert!(
        !outcome
            .missed
            .iter()
            .any(|m| m.observer == NodeId(5) && m.failed == NodeId(6)),
        "the backup gateway must carry the report to cluster A: {:?}",
        outcome.missed
    );
}

#[test]
fn without_bgw_assist_a_dead_gateway_partitions_the_backbone() {
    let (topology, view) = two_cluster_fixture();
    let config = FdsConfig {
        bgw_assist: false,
        ..FdsConfig::default()
    };
    let exp = Experiment::with_view(topology, view, config);
    let crashes = [
        PlannedCrash {
            epoch: 1,
            node: NodeId(1),
        },
        PlannedCrash {
            epoch: 3,
            node: NodeId(6),
        },
    ];
    let outcome = exp.run(0.0, 8, &crashes, 3);
    assert!(
        outcome
            .missed
            .iter()
            .any(|m| m.observer == NodeId(5) && m.failed == NodeId(6)),
        "with the only forwarder dead and assist off, A's far member cannot learn"
    );
}

#[test]
fn heavy_loss_triggers_head_retransmissions() {
    let (topology, view) = two_cluster_fixture();
    let exp = Experiment::with_view(topology, view, FdsConfig::default());
    let mut retransmissions = 0;
    for seed in 0..10 {
        let outcome = exp.run(
            0.5,
            6,
            &[PlannedCrash {
                epoch: 1,
                node: NodeId(6),
            }],
            seed,
        );
        retransmissions += outcome.retransmissions;
    }
    assert!(
        retransmissions > 0,
        "at p = 0.5 some implicit acks must go missing and trigger retransmission"
    );
}

#[test]
fn reports_are_suppressed_once_the_peer_head_knows() {
    // Run long after the crash: the gateway must not keep re-sending
    // the same report every epoch once cluster B's head has evidently
    // adopted it ("no news is good news" + the implicit-ack ledger).
    let (topology, view) = two_cluster_fixture();
    let exp = Experiment::with_view(topology, view, FdsConfig::default());
    let outcome = exp.run(
        0.0,
        12,
        &[PlannedCrash {
            epoch: 1,
            node: NodeId(5),
        }],
        5,
    );
    assert_eq!(outcome.completeness, 1.0);
    assert!(
        outcome.reports <= 4,
        "{} reports for a single failure is chatter, not forwarding",
        outcome.reports
    );
}

#[test]
fn cumulative_reports_backfill_late_clusters() {
    // Two failures in cluster A, the second after the first has long
    // propagated: the second report carries both (cumulative), so even
    // if B somehow missed the first it converges. Here we just check
    // the mechanism engages and B's members know both at the end.
    let (topology, view) = two_cluster_fixture();
    let exp = Experiment::with_view(topology, view, FdsConfig::default());
    let crashes = [
        PlannedCrash {
            epoch: 1,
            node: NodeId(5),
        },
        PlannedCrash {
            epoch: 3,
            node: NodeId(2),
        },
    ];
    let outcome = exp.run(0.1, 10, &crashes, 7);
    for failed in [NodeId(5), NodeId(2)] {
        assert!(
            !outcome
                .missed
                .iter()
                .any(|m| m.observer == NodeId(6) && m.failed == failed),
            "B's far member must know about {failed}: {:?}",
            outcome.missed
        );
    }
}

#[test]
fn report_storm_is_bounded_under_permanent_partition() {
    // Kill the *receiving head* so its implicit ack can never come:
    // the gateway and backup must give up after their bounded retries
    // instead of flooding the channel forever.
    let (topology, view) = two_cluster_fixture();
    let exp = Experiment::with_view(topology, view, FdsConfig::default());
    let crashes = [
        PlannedCrash {
            epoch: 1,
            node: NodeId(5),
        }, // news in cluster A
        PlannedCrash {
            epoch: 1,
            node: NodeId(3),
        }, // B's head dies too
    ];
    // Long run: if retries were unbounded the report count would grow
    // with the epochs.
    let short = exp.run(0.0, 6, &crashes, 5);
    let long = exp.run(0.0, 16, &crashes, 5);
    assert!(
        long.reports <= short.reports + 28,
        "reports must not grow without bound: {} then {}",
        short.reports,
        long.reports
    );
}
