//! Property-based tests for the discrete-event core: `EventQueue`
//! ordering (stable `(time, sequence)` tie-breaking) and the
//! simulator's timer slab (set / cancel / re-set-same-token).
//!
//! Both are checked against trivially-correct reference models:
//! the queue against a stable sort, the slab against a pending-list
//! interpreter. Narrow value ranges force heavy collisions — many
//! events at the same instant, many timers sharing a token.

use cbfd::net::actor::{Actor, Ctx, TimerToken};
use cbfd::net::event::{EventKind, EventQueue};
use cbfd::net::sim::Simulator;
use cbfd::prelude::*;
use proptest::prelude::*;

fn timer(node: u64, token: u64) -> EventKind<()> {
    EventKind::Timer {
        node: NodeId(node as u32),
        token,
        id: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Schedule-all-then-pop-all equals a stable sort by time: ties
    /// at one instant resolve in insertion order.
    #[test]
    fn queue_pops_are_a_stable_sort_by_time(
        times in proptest::collection::vec(0u64..8, 0..40),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), timer(i as u64, t));
        }

        let mut expected: Vec<(u64, u64)> =
            times.iter().enumerate().map(|(i, &t)| (t, i as u64)).collect();
        expected.sort_by_key(|&(t, _)| t); // stable: preserves insertion order

        let mut popped = Vec::new();
        while let Some((at, kind)) = q.pop() {
            match kind {
                EventKind::Timer { node, token, .. } => {
                    prop_assert_eq!(SimTime::from_micros(token), at);
                    popped.push((token, node.0 as u64));
                }
                _ => unreachable!(),
            }
        }
        prop_assert_eq!(popped, expected);
    }

    /// Interleaved schedule/pop operations match a reference model
    /// that pops the minimum `(time, insertion-sequence)` pair.
    #[test]
    fn queue_matches_model_under_interleaved_ops(
        ops in proptest::collection::vec((0u8..4, 0u64..8), 0..60),
    ) {
        run_interleaved_against_model(&ops);
    }

    /// Same interleaved model, but with timestamps straddling the
    /// calendar ring's 2^17-microsecond horizon: events land in the
    /// overflow heap tier and must merge back in exact `(time, seq)`
    /// order, including ring-vs-heap ties at one instant and
    /// behind-the-cursor schedules after a far-future pop.
    #[test]
    fn queue_matches_model_across_the_overflow_horizon(
        ops in proptest::collection::vec(
            (
                0u8..4,
                prop_oneof![
                    0u64..16,                              // near-term ring
                    cbfd::net::event::SLOT_COUNT as u64 - 8
                        ..cbfd::net::event::SLOT_COUNT as u64 + 8, // straddle
                    1_000_000u64..1_000_016,               // deep overflow
                ],
            ),
            0..60,
        ),
    ) {
        run_interleaved_against_model(&ops);
    }
}

/// Drives an `EventQueue` and a minimum-`(time, seq)` reference model
/// through the same op script, checking `pop`, `len`, and `peek_time`
/// after every step. `op == 0` pops; anything else schedules at `t`.
fn run_interleaved_against_model(ops: &[(u8, u64)]) {
    let mut q = EventQueue::new();
    let mut model: Vec<(u64, u64)> = Vec::new(); // (time, seq)
    let mut seq = 0u64;

    for &(op, t) in ops {
        if op == 0 {
            // Pop: the queue must agree with the model's minimum.
            let expect = model
                .iter()
                .enumerate()
                .min_by_key(|(_, &(time, s))| (time, s))
                .map(|(i, _)| i);
            match expect {
                Some(i) => {
                    let (time, s) = model.remove(i);
                    let (at, kind) = q.pop().expect("model has a pending event");
                    prop_assert_eq!(at, SimTime::from_micros(time));
                    match kind {
                        EventKind::Timer { token, .. } => prop_assert_eq!(token, s),
                        _ => unreachable!(),
                    }
                }
                None => prop_assert!(q.pop().is_none()),
            }
        } else {
            q.schedule(SimTime::from_micros(t), timer(0, seq));
            model.push((t, seq));
            seq += 1;
        }
        prop_assert_eq!(q.len(), model.len());
        prop_assert_eq!(
            q.peek_time(),
            model
                .iter()
                .map(|&(time, _)| time)
                .min()
                .map(SimTime::from_micros)
        );
    }
}

// ------------------------------------------------------- timer slab

/// One scripted timer operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `set_timer(delay, token)`.
    Set { token: u64, delay_ms: u64 },
    /// `cancel_timer(token)` — kills *all* pending timers with the
    /// token, and nothing else.
    Cancel { token: u64 },
}

fn arb_op(max_delay: u64) -> impl Strategy<Value = Op> {
    // Tokens in 0..4 and small delays force same-token and
    // same-instant collisions.
    (0u8..4, 0u64..4, 1u64..max_delay).prop_map(|(kind, token, delay_ms)| {
        if kind == 0 {
            Op::Cancel { token }
        } else {
            Op::Set { token, delay_ms }
        }
    })
}

/// Runs `start_ops` in `on_start`, then `fire_ops` inside the first
/// timer callback, recording every `(now_ms, token)` that fires.
struct Scripted {
    start_ops: Vec<Op>,
    fire_ops: Vec<Op>,
    fired: Vec<(u64, u64)>,
}

fn apply_ops(ctx: &mut Ctx<'_, ()>, ops: &[Op]) {
    for &op in ops {
        match op {
            Op::Set { token, delay_ms } => {
                ctx.set_timer(SimDuration::from_millis(delay_ms), TimerToken(token));
            }
            Op::Cancel { token } => ctx.cancel_timer(TimerToken(token)),
        }
    }
}

impl Actor for Scripted {
    type Msg = ();
    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        let ops = std::mem::take(&mut self.start_ops);
        apply_ops(ctx, &ops);
    }
    fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: TimerToken) {
        self.fired.push((ctx.now().as_millis(), token.0));
        let ops = std::mem::take(&mut self.fire_ops);
        apply_ops(ctx, &ops);
    }
}

/// Reference interpreter: a pending list of `(fire_at, seq, token)`
/// where cancel drops every entry with the token and firing order is
/// minimum `(fire_at, seq)`.
fn model_fires(start_ops: &[Op], fire_ops: &[Op]) -> Vec<(u64, u64)> {
    let mut pending: Vec<(u64, u64, u64)> = Vec::new();
    let mut seq = 0u64;
    let mut apply = |pending: &mut Vec<(u64, u64, u64)>, now: u64, ops: &[Op]| {
        for &op in ops {
            match op {
                Op::Set { token, delay_ms } => {
                    pending.push((now + delay_ms, seq, token));
                    seq += 1;
                }
                Op::Cancel { token } => pending.retain(|&(_, _, t)| t != token),
            }
        }
    };

    apply(&mut pending, 0, start_ops);
    let mut fired = Vec::new();
    let mut first = true;
    while let Some(i) = pending
        .iter()
        .enumerate()
        .min_by_key(|(_, &(at, s, _))| (at, s))
        .map(|(i, _)| i)
    {
        let (at, _, token) = pending.remove(i);
        fired.push((at, token));
        if first {
            first = false;
            // Commands issued inside the callback apply before the
            // next event pops — a same-instant cancel is still exact.
            apply(&mut pending, at, fire_ops);
        }
    }
    fired
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The simulator's timer slab agrees with the reference model for
    /// arbitrary set/cancel/re-set scripts, including ops issued
    /// mid-run from inside a timer callback.
    #[test]
    fn timer_slab_matches_model(
        start_ops in proptest::collection::vec(arb_op(8), 0..12),
        fire_ops in proptest::collection::vec(arb_op(8), 0..8),
    ) {
        let expected = model_fires(&start_ops, &fire_ops);

        let topo = Topology::from_positions(vec![Point::new(0.0, 0.0)], 100.0);
        let mut sim = Simulator::new(topo, RadioConfig::lossless(), 1, |_| Scripted {
            start_ops: start_ops.clone(),
            fire_ops: fire_ops.clone(),
            fired: Vec::new(),
        });
        sim.run_until(SimTime::from_secs(1));

        prop_assert_eq!(&sim.actor(NodeId(0)).fired, &expected);
        prop_assert_eq!(sim.metrics().timers_fired, expected.len() as u64);
    }
}
