//! Property-based tests over random geometries, parameters, and
//! message contents.

use cbfd::analysis::{false_detection, geometry, incompleteness};
use cbfd::cluster::{invariants, oracle, FormationConfig};
use cbfd::core::aggregation::Aggregate;
use cbfd::core::bitmap::RosterBitmap;
use cbfd::core::message::{Digest, FailureReport, FdsMsg, HealthUpdate};
use cbfd::core::rules::{detect_failures, RoundEvidence};
use cbfd::prelude::*;
use proptest::prelude::*;

fn arb_point(side: f64) -> impl Strategy<Value = Point> {
    (0.0..side, 0.0..side).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    proptest::collection::vec(arb_point(600.0), 2..120)
        .prop_map(|pts| Topology::from_positions(pts, 100.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn formation_invariants_hold_on_any_geometry(topology in arb_topology()) {
        let view = oracle::form(&topology, &FormationConfig::default());
        let violations = invariants::check(&topology, &view);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn formation_covers_every_connected_node(topology in arb_topology()) {
        let view = oracle::form(&topology, &FormationConfig::default());
        for node in topology.node_ids() {
            if topology.degree(node) > 0 {
                prop_assert!(view.cluster_of(node).is_some(), "{node} uncovered");
            } else {
                prop_assert!(view.cluster_of(node).is_none(), "{node} isolated yet covered");
            }
        }
    }

    #[test]
    fn extend_is_idempotent(topology in arb_topology()) {
        let config = FormationConfig::default();
        let view = oracle::form(&topology, &config);
        let again = oracle::extend(&topology, &config, &view);
        prop_assert_eq!(view, again);
    }

    #[test]
    fn members_are_at_most_two_hops_apart(topology in arb_topology()) {
        // The cluster is a unit disk: any two members reach each other
        // directly or via the head.
        let view = oracle::form(&topology, &FormationConfig::default());
        for cluster in view.clusters() {
            for m in cluster.members() {
                prop_assert!(
                    *m == cluster.head() || topology.linked(*m, cluster.head()),
                    "member {m} beyond one hop from its head"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fig5_forms_agree(n in 2u64..150, p in 0.0f64..=1.0, an in 0.0f64..=1.0) {
        let sum = false_detection::paper_sum(n, p, an);
        let closed = false_detection::closed_form(n, p, an);
        let diff = (sum - closed).abs();
        prop_assert!(
            diff <= 1e-9 * closed.max(1e-300) || diff < 1e-12,
            "n={n} p={p} an={an}: {sum} vs {closed}"
        );
    }

    #[test]
    fn fig7_forms_agree(n in 2u64..150, p in 0.0f64..=1.0, an in 0.0f64..=1.0) {
        let sum = incompleteness::binomial_sum(n, p, an);
        let closed = incompleteness::closed_form(n, p, an);
        let diff = (sum - closed).abs();
        prop_assert!(
            diff <= 1e-9 * closed.max(1e-300) || diff < 1e-12,
            "n={n} p={p} an={an}: {sum} vs {closed}"
        );
    }

    #[test]
    fn measures_are_probabilities(n in 2u64..200, p in 0.0f64..=1.0) {
        for v in [
            false_detection::worst_case(n, p),
            incompleteness::worst_case(n, p),
            cbfd::analysis::ch_false_detection::probability(n, p),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "n={n} p={p}: {v}");
        }
    }

    #[test]
    fn measures_decrease_with_density(n in 3u64..199, p in 0.01f64..=0.99) {
        prop_assert!(
            false_detection::worst_case(n + 1, p) <= false_detection::worst_case(n, p)
        );
        prop_assert!(
            incompleteness::worst_case(n + 1, p) <= incompleteness::worst_case(n, p)
        );
    }

    #[test]
    fn lens_fraction_bounds(t in 0.0f64..=1.0) {
        let f = geometry::an_fraction(t);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(f >= geometry::worst_case_an_fraction() - 1e-12);
    }
}

fn arb_node_ids() -> impl Strategy<Value = Vec<NodeId>> {
    proptest::collection::vec(0u32..500, 0..40).prop_map(|v| v.into_iter().map(NodeId).collect())
}

fn arb_update() -> impl Strategy<Value = HealthUpdate> {
    (
        0u32..500,
        0u32..500,
        0u64..1_000,
        arb_node_ids(),
        arb_node_ids(),
        any::<bool>(),
        arb_node_ids(),
        arb_node_ids(),
        0u32..1_000,
        proptest::option::of((0u32..1000, any::<i32>(), -1000i32..1000, -1000i32..1000)),
    )
        .prop_map(
            |(
                from,
                cluster,
                epoch,
                new_failed,
                all_failed,
                takeover,
                joined,
                roster,
                roster_version,
                agg,
            )| {
                HealthUpdate {
                    from: NodeId(from),
                    cluster: ClusterId::of(NodeId(cluster)),
                    epoch,
                    new_failed,
                    all_failed,
                    takeover,
                    joined,
                    roster,
                    roster_version,
                    aggregate: agg.map(|(count, sum, min, max)| Aggregate {
                        count,
                        sum: i64::from(sum),
                        min,
                        max,
                    }),
                }
            },
        )
}

/// A bitmap over an arbitrary roster size (spanning the inline→spilled
/// boundary) with an arbitrary subset of positions set.
fn arb_bitmap() -> impl Strategy<Value = RosterBitmap> {
    (
        0u32..100,
        0usize..320,
        proptest::collection::vec(any::<bool>(), 320usize),
    )
        .prop_map(|(version, len, bits)| {
            let mut b = RosterBitmap::new(version, len);
            for (pos, set) in bits.iter().take(len).enumerate() {
                if *set {
                    b.set(pos);
                }
            }
            b
        })
}

fn arb_msg() -> impl Strategy<Value = FdsMsg> {
    prop_oneof![
        (0u32..500, any::<bool>(), proptest::option::of(any::<i32>())).prop_map(
            |(n, m, reading)| FdsMsg::Heartbeat {
                from: NodeId(n),
                marked: m,
                reading,
            }
        ),
        (
            0u32..500,
            0u32..500,
            arb_bitmap(),
            proptest::collection::vec((0u32..500, any::<i32>()), 0..20)
        )
            .prop_map(|(n, head, heard, readings)| FdsMsg::Digest(
                Digest::new(NodeId(n), ClusterId::of(NodeId(head)), heard).with_readings(
                    readings
                        .into_iter()
                        .map(|(id, r)| (NodeId(id), r))
                        .collect()
                )
            )),
        arb_update().prop_map(FdsMsg::HealthUpdate),
        (0u32..500, 0u64..1_000).prop_map(|(n, e)| FdsMsg::ForwardRequest {
            from: NodeId(n),
            epoch: e
        }),
        (0u32..500, arb_update()).prop_map(|(n, u)| FdsMsg::PeerForward {
            to: NodeId(n),
            update: u
        }),
        (0u32..500, 0u64..1_000).prop_map(|(n, e)| FdsMsg::PeerAck {
            from: NodeId(n),
            epoch: e
        }),
        (0u32..500, 0u32..500, arb_node_ids(), arb_node_ids()).prop_map(
            |(via, to, failed, known)| FdsMsg::Report(FailureReport {
                via: NodeId(via),
                to_cluster: ClusterId::of(NodeId(to)),
                failed,
                known_by: known.into_iter().map(ClusterId::of).collect(),
            })
        ),
        (0u32..500, 0u64..1_000).prop_map(|(n, e)| FdsMsg::SleepNotice {
            from: NodeId(n),
            until_epoch: e
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_round_trips(msg in arb_msg()) {
        let decoded = FdsMsg::decode(msg.encode()).expect("decode");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn detection_rule_never_condemns_heard_nodes(
        len in 1usize..200,
        expected_bits in proptest::collection::vec(any::<bool>(), 200),
        heartbeat_bits in proptest::collection::vec(any::<bool>(), 200),
        author_bits in proptest::collection::vec(any::<bool>(), 200),
    ) {
        let roster_order: Vec<NodeId> = (0..len as u32).map(NodeId).collect();
        let mut evidence = RoundEvidence::new();
        evidence.reset(1, len);
        let mut expected = RosterBitmap::new(1, len);
        let mut heartbeats = RosterBitmap::new(1, len);
        for pos in 0..len {
            if expected_bits[pos] {
                expected.set(pos);
            }
            if heartbeat_bits[pos] {
                evidence.record_heartbeat(pos);
                heartbeats.set(pos);
            }
        }
        // Every digest reflects exactly the heartbeat set, like a
        // member that overheard all of R-1.
        for (pos, &authored) in author_bits.iter().enumerate().take(len) {
            if authored {
                evidence.record_digest(pos, Some(&heartbeats));
            }
        }
        let failed = detect_failures(&expected, &evidence, &roster_order);
        for f in &failed {
            let pos = f.0 as usize;
            prop_assert!(!heartbeat_bits[pos], "{f} was heard yet condemned");
            prop_assert!(!author_bits[pos], "{f} sent a digest yet condemned");
        }
        // And every expected node with zero evidence is condemned
        // (reflection adds nothing here: digests only repeat the
        // heartbeat set).
        for pos in 0..len {
            let evidenced = heartbeat_bits[pos] || author_bits[pos];
            prop_assert_eq!(
                failed.contains(&NodeId(pos as u32)),
                expected_bits[pos] && !evidenced,
                "position {}", pos
            );
        }
    }

    #[test]
    fn bitmap_set_clear_iter_match_btreeset_model(
        len in 1usize..320,
        ops in proptest::collection::vec((0usize..320, any::<bool>()), 0..80),
    ) {
        use std::collections::BTreeSet;
        let mut bitmap = RosterBitmap::new(7, len);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (idx, insert) in &ops {
            let pos = idx % len;
            if *insert {
                bitmap.set(pos);
                model.insert(pos);
            } else {
                bitmap.clear(pos);
                model.remove(&pos);
            }
            prop_assert_eq!(bitmap.contains(pos), model.contains(&pos));
        }
        prop_assert_eq!(bitmap.count(), model.len());
        prop_assert_eq!(bitmap.is_empty(), model.is_empty());
        let collected: Vec<usize> = bitmap.iter().collect();
        let expected: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(collected, expected, "iter yields positions in order");
    }

    #[test]
    fn bitmap_union_matches_btreeset_union(a in arb_bitmap(), b in arb_bitmap()) {
        use std::collections::BTreeSet;
        let sa: BTreeSet<usize> = a.iter().collect();
        let sb: BTreeSet<usize> = b.iter().collect();
        let mut unioned = a.clone();
        if a.version() == b.version() && a.len() == b.len() {
            unioned.union_with(&b).expect("same version unions");
            let expected: BTreeSet<usize> = sa.union(&sb).copied().collect();
            let got: BTreeSet<usize> = unioned.iter().collect();
            prop_assert_eq!(got, expected);
        } else if a.version() != b.version() {
            let err = unioned.union_with(&b).expect_err("version mismatch rejected");
            prop_assert_eq!(err.ours, a.version());
            prop_assert_eq!(err.theirs, b.version());
            prop_assert_eq!(&unioned, &a, "rejected union leaves the bitmap untouched");
        }
        // or_prefix is the lenient path: common prefix only, never more.
        let mut prefixed = a.clone();
        prefixed.or_prefix(&b);
        let common = a.len().min(b.len());
        let expected: BTreeSet<usize> = sa
            .iter()
            .copied()
            .chain(sb.iter().copied().filter(|p| *p < common))
            .collect();
        let got: BTreeSet<usize> = prefixed.iter().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn bitmap_spill_boundary_is_seamless(extra in 0usize..130) {
        // Straddle the inline→boxed boundary (256 bits): grow a bitmap
        // across it and verify bits survive and positions stay stable.
        let len = 200 + extra;
        let mut grown = RosterBitmap::new(3, 200);
        for pos in (0..200).step_by(7) {
            grown.set(pos);
        }
        grown.grow(3, len);
        prop_assert_eq!(grown.len(), len);
        let mut fresh = RosterBitmap::new(3, len);
        for pos in (0..200).step_by(7) {
            fresh.set(pos);
        }
        prop_assert_eq!(&grown, &fresh, "growth across the spill boundary preserves bits");
        if len > 200 {
            grown.set(len - 1);
            prop_assert!(grown.contains(len - 1));
            prop_assert_eq!(grown.count(), fresh.count() + 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Robustness: garbage on the air must yield an error, not a
        // panic (the simulator never corrupts, but a release-quality
        // codec cannot assume that).
        let _ = FdsMsg::decode(cbfd::core::bytes::Bytes::from(bytes));
    }

    #[test]
    fn truncated_valid_messages_error_cleanly(msg in arb_msg(), cut_fraction in 0.0f64..1.0) {
        let encoded = msg.encode();
        let cut = ((encoded.len() as f64) * cut_fraction) as usize;
        if cut < encoded.len() {
            prop_assert!(FdsMsg::decode(encoded.slice(0..cut)).is_err());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grid_topology_equals_naive_on_any_geometry(
        pts in proptest::collection::vec((-500.0f64..500.0, -500.0f64..500.0), 0..80),
        range in 10.0f64..300.0,
    ) {
        let positions: Vec<Point> = pts.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let fast = Topology::from_positions(positions.clone(), range);
        let slow = Topology::from_positions_naive(positions, range);
        for n in fast.node_ids() {
            prop_assert_eq!(fast.neighbors(n), slow.neighbors(n));
        }
    }

    #[test]
    fn reconcile_is_sound_under_random_motion(
        pts in proptest::collection::vec((0.0f64..500.0, 0.0f64..500.0), 5..60),
        moves in proptest::collection::vec((-80.0f64..80.0, -80.0f64..80.0), 5..60),
    ) {
        use cbfd::cluster::maintenance;
        let config = FormationConfig::default();
        let before: Vec<Point> = pts.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let topology = Topology::from_positions(before.clone(), 100.0);
        let view = oracle::form(&topology, &config);

        let after: Vec<Point> = before
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (dx, dy) = moves.get(i).copied().unwrap_or((0.0, 0.0));
                Point::new((p.x + dx).clamp(0.0, 500.0), (p.y + dy).clamp(0.0, 500.0))
            })
            .collect();
        let moved = Topology::from_positions(after, 100.0);
        let reconciled = maintenance::reconcile(&moved, &config, &view);
        let violations = invariants::check(&moved, &reconciled);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn outcome_bookkeeping_invariants_hold_on_random_runs(
        pts in proptest::collection::vec((0.0f64..400.0, 0.0f64..400.0), 6..30),
        p in 0.0f64..0.6,
        crash_index in 0usize..100,
        seed in 0u64..1_000,
    ) {
        use cbfd::core::service::PlannedCrash;
        let positions: Vec<Point> = pts.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let n = positions.len();
        let topology = Topology::from_positions(positions, 100.0);
        let exp = Experiment::new(
            topology,
            cbfd::core::config::FdsConfig::default(),
            FormationConfig::default(),
        );
        let crashes = [PlannedCrash { epoch: 1, node: NodeId((crash_index % n) as u32) }];
        let outcome = exp.run(p, 4, &crashes, seed);

        prop_assert!((0.0..=1.0).contains(&outcome.completeness));
        prop_assert!(outcome.incompleteness_rate() <= 1.0);
        prop_assert!(outcome.bytes >= outcome.metrics.transmissions * 6);
        prop_assert_eq!(outcome.crashed.len(), 1);
        for latency in outcome.detection_latency.values() {
            prop_assert!(*latency >= 1, "nothing is detected before its first silent epoch");
        }
        for fd in &outcome.false_detections {
            prop_assert!(fd.suspect != fd.accuser, "nobody condemns itself");
        }
        // Offered copies conserve: every delivery/loss/drop traces back
        // to a transmission with at least one in-range receiver.
        let offered = outcome.metrics.deliveries
            + outcome.metrics.losses
            + outcome.metrics.dropped_dead;
        prop_assert!(offered <= outcome.metrics.transmissions * (n as u64 - 1));
    }
}
