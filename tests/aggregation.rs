//! Data aggregation embedded in the FDS rounds — the "message
//! sharing" extension of the paper's concluding remarks. Readings ride
//! on heartbeats and digests; the clusterhead publishes a
//! duplicate-free cluster aggregate in its health update at **zero
//! additional transmissions**.

use cbfd::cluster::FormationConfig;
use cbfd::core::aggregation::{synthetic_reading, Aggregate};
use cbfd::core::config::FdsConfig;
use cbfd::core::node::FdsNode;
use cbfd::core::profile::build_profiles;
use cbfd::core::FdsMsg;
use cbfd::net::sim::Simulator;
use cbfd::prelude::*;

fn single_cluster(n: usize, seed: u64) -> Topology {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let center = Point::new(0.0, 0.0);
    let mut positions = vec![center];
    positions.extend(
        Placement::UniformDisk {
            center,
            radius: 100.0,
        }
        .generate(n - 1, &mut rng),
    );
    Topology::from_positions(positions, 100.0)
}

/// Runs the raw simulator (not the service harness) so the head's
/// actor state can be inspected afterwards.
fn run_cluster(n: usize, p: f64, epochs: u64, config: FdsConfig, seed: u64) -> Simulator<FdsNode> {
    let topology = single_cluster(n, seed);
    let view = cbfd::cluster::oracle::form(&topology, &FormationConfig::default());
    assert_eq!(view.cluster_count(), 1);
    let profiles = build_profiles(&view);
    let mut sim = Simulator::new(topology, RadioConfig::bernoulli(p), seed, |id| {
        FdsNode::new(profiles[id.index()].clone(), config, 1_000.0)
    });
    sim.run_until(
        SimTime::ZERO + config.heartbeat_interval * epochs
            - cbfd::net::time::SimDuration::from_micros(1),
    );
    sim
}

fn aggregation_config() -> FdsConfig {
    FdsConfig {
        aggregation: true,
        ..FdsConfig::default()
    }
}

#[test]
fn lossless_aggregate_is_exact() {
    let n = 30;
    let sim = run_cluster(n, 0.0, 3, aggregation_config(), 1);
    let head = sim.actor(NodeId(0));
    assert_eq!(head.aggregates().len(), 3, "one aggregate per epoch");
    for (epoch, agg) in head.aggregates() {
        let mut expected = Aggregate::empty();
        for i in 0..n as u32 {
            expected.merge(&Aggregate::of(synthetic_reading(NodeId(i), *epoch)));
        }
        assert_eq!(agg, &expected, "epoch {epoch}: aggregate must be exact");
        assert_eq!(agg.count as usize, n, "full coverage on a clean channel");
    }
}

#[test]
fn aggregation_costs_zero_extra_messages() {
    let with = run_cluster(40, 0.1, 5, aggregation_config(), 2);
    let without = run_cluster(40, 0.1, 5, FdsConfig::default(), 2);
    assert_eq!(
        with.metrics().transmissions,
        without.metrics().transmissions,
        "message sharing: the FDS rounds carry the data for free"
    );
}

#[test]
fn digest_redundancy_raises_coverage_under_loss() {
    // At p = 0.3 the head directly hears ~70% of readings; the digest
    // round relays most of the rest, so coverage should be well above
    // the direct-reception baseline.
    let n = 40;
    let p = 0.3;
    let epochs = 10;
    let sim = run_cluster(n, p, epochs, aggregation_config(), 3);
    let head = sim.actor(NodeId(0));
    let mean_coverage: f64 = head
        .aggregates()
        .iter()
        .map(|(_, a)| f64::from(a.count) / n as f64)
        .sum::<f64>()
        / head.aggregates().len() as f64;
    assert!(
        mean_coverage > 0.9,
        "digest relaying should push coverage above 90%, got {mean_coverage:.3}"
    );

    // Ablation: without the digest round, coverage collapses to the
    // direct-reception rate ≈ 1 − p (plus the head's own reading).
    let no_digest = FdsConfig {
        digest_round: false,
        ..aggregation_config()
    };
    let sim = run_cluster(n, p, epochs, no_digest, 3);
    let head = sim.actor(NodeId(0));
    let direct_coverage: f64 = head
        .aggregates()
        .iter()
        .map(|(_, a)| f64::from(a.count) / n as f64)
        .sum::<f64>()
        / head.aggregates().len() as f64;
    assert!(
        (direct_coverage - (1.0 - p)).abs() < 0.12,
        "without digests coverage ≈ 1 − p, got {direct_coverage:.3}"
    );
    assert!(mean_coverage > direct_coverage + 0.1);
}

#[test]
fn members_receive_the_published_aggregate() {
    let sim = run_cluster(20, 0.0, 2, aggregation_config(), 4);
    // Inspect the broadcast update: every member should have seen an
    // update carrying an aggregate (observable through stats).
    for (id, node) in sim.actors() {
        if id == NodeId(0) {
            continue;
        }
        assert!(
            node.stats().updates_received > 0,
            "{id} heard no update at all"
        );
    }
    // And the wire format round-trips the aggregate.
    let (epoch, agg) = sim.actor(NodeId(0)).aggregates()[0];
    let update = cbfd::core::message::HealthUpdate {
        from: NodeId(0),
        cluster: ClusterId::of(NodeId(0)),
        epoch,
        new_failed: vec![],
        all_failed: vec![],
        takeover: false,
        joined: vec![],
        roster: vec![],
        roster_version: 0,
        aggregate: Some(agg),
    };
    let msg = FdsMsg::HealthUpdate(update.clone());
    let decoded = FdsMsg::decode(msg.encode()).unwrap();
    assert_eq!(decoded, msg);
}

#[test]
fn aggregation_does_not_perturb_detection() {
    // Same seeds, same channel: enabling aggregation must not change
    // what gets detected (readings ride along, they do not interfere).
    let topology = single_cluster(30, 5);
    let exp_plain = Experiment::new(
        topology.clone(),
        FdsConfig::default(),
        FormationConfig::default(),
    );
    let exp_agg = Experiment::new(topology, aggregation_config(), FormationConfig::default());
    let crash = [PlannedCrash {
        epoch: 1,
        node: NodeId(7),
    }];
    let a = exp_plain.run(0.2, 6, &crash, 5);
    let b = exp_agg.run(0.2, 6, &crash, 5);
    assert_eq!(
        a.detection_latency.get(&NodeId(7)),
        b.detection_latency.get(&NodeId(7))
    );
    assert_eq!(a.metrics.transmissions, b.metrics.transmissions);
}
