//! Fault-injection scenarios: role-targeted crashes, cascades, and
//! harsh channels.

use cbfd::cluster::Role;
use cbfd::core::config::FdsConfig;
use cbfd::prelude::*;

fn dense_experiment(seed: u64, n: usize, side: f64) -> Experiment {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let positions = Placement::UniformRect(Rect::square(side)).generate(n, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);
    Experiment::new(topology, FdsConfig::default(), FormationConfig::default())
}

#[test]
fn gateway_crash_does_not_break_propagation() {
    // Kill the primary gateway of some link, then crash a member: the
    // backup gateways must carry the failure report across.
    let exp = dense_experiment(1, 180, 500.0);
    let (pair, link) = exp
        .view()
        .gateway_links()
        .find(|(_, l)| !l.backups.is_empty())
        .map(|(p, l)| (*p, l.clone()))
        .expect("dense field has links with backups");
    let _ = pair;
    let victim_member = exp
        .view()
        .clusters()
        .flat_map(|c| c.non_head_members().collect::<Vec<_>>())
        .find(|m| *m != link.primary && exp.view().role_of(*m) == Role::Ordinary)
        .expect("an ordinary member exists");
    let crashes = [
        PlannedCrash {
            epoch: 1,
            node: link.primary,
        },
        PlannedCrash {
            epoch: 3,
            node: victim_member,
        },
    ];
    let outcome = exp.run(0.05, 10, &crashes, 1);
    assert!(
        outcome.detection_latency.contains_key(&victim_member),
        "member crash must be detected despite the dead gateway"
    );
    assert!(
        outcome.completeness > 0.98,
        "completeness {} too low; missed {:?}",
        outcome.completeness,
        outcome.missed.len()
    );
}

#[test]
fn deputy_crash_then_head_crash_uses_next_deputy() {
    let exp = dense_experiment(2, 180, 450.0);
    let cluster = exp
        .view()
        .clusters()
        .find(|c| c.deputies().len() >= 2 && c.len() >= 6)
        .expect("a cluster with a deep deputy bench")
        .clone();
    let first_deputy = cluster.deputies()[0];
    let head = cluster.head();
    let crashes = [
        PlannedCrash {
            epoch: 1,
            node: first_deputy,
        },
        PlannedCrash {
            epoch: 3,
            node: head,
        },
    ];
    let outcome = exp.run(0.02, 10, &crashes, 2);
    assert!(
        outcome.detection_latency.contains_key(&first_deputy),
        "deputy crash detected"
    );
    assert!(
        outcome.detection_latency.contains_key(&head),
        "head crash must be judged by the *second* deputy"
    );
    assert!(outcome.accurate(), "{:?}", outcome.false_detections);
}

// `cascade_of_crashes_is_fully_reported` and
// `harsh_channel_extremes_do_not_wedge_the_service` migrated to
// tests/chaos.rs in FaultPlan form (same networks, seeds and
// assertions, plus the online invariant monitor).

#[test]
fn whole_cluster_annihilation_is_detected_by_neighbors() {
    // Killing an entire small cluster (head + members) means nobody
    // inside can report; detection of the *members* is impossible for
    // outsiders under the paper's architecture, but the service must
    // not produce false detections elsewhere.
    let exp = dense_experiment(4, 160, 500.0);
    let cluster = exp
        .view()
        .clusters()
        .filter(|c| c.len() <= 5)
        .min_by_key(|c| c.len())
        .expect("a small cluster exists")
        .clone();
    let crashes: Vec<PlannedCrash> = cluster
        .members()
        .iter()
        .map(|m| PlannedCrash { epoch: 1, node: *m })
        .collect();
    let outcome = exp.run(0.05, 8, &crashes, 4);
    // Survivors must stay accurate about each other.
    let survivors_falsely_accused = outcome
        .false_detections
        .iter()
        .filter(|fd| !cluster.contains(fd.suspect))
        .count();
    assert_eq!(survivors_falsely_accused, 0);
}

#[test]
fn total_loss_channel_detects_everything_and_everyone_falsely() {
    // p = 1: no message ever arrives, so every head condemns every
    // member on the first execution. A degenerate sanity bound.
    let exp = dense_experiment(6, 40, 300.0);
    let outcome = exp.run(1.0, 2, &[], 6);
    assert!(!outcome.accurate());
    let expected_victims: usize = exp
        .view()
        .clusters()
        .map(|c| c.len().saturating_sub(1))
        .sum();
    // Every non-head member is falsely condemned by its head at epoch
    // 0 (deputies may add takeover condemnations on top).
    assert!(
        outcome.false_detections.len() >= expected_victims,
        "{} < {expected_victims}",
        outcome.false_detections.len()
    );
}

#[test]
fn disabling_cumulative_reports_weakens_catchup() {
    // With cumulative reports a cluster that missed the original
    // report learns about the failure from any later report; without
    // them, catch-up opportunities disappear. Statistically visible as
    // completeness(with) >= completeness(without) across seeds.
    let mut with_sum = 0.0;
    let mut without_sum = 0.0;
    for seed in 0..6 {
        let exp_on = dense_experiment(100 + seed, 150, 520.0);
        let victim = PlannedCrash {
            epoch: 1,
            node: NodeId(77),
        };
        with_sum += exp_on.run(0.35, 8, &[victim], seed).completeness;

        let mut rng = rand::rngs::StdRng::seed_from_u64(100 + seed);
        let positions = Placement::UniformRect(Rect::square(520.0)).generate(150, &mut rng);
        let topology = Topology::from_positions(positions, 100.0);
        let off = FdsConfig {
            cumulative_reports: false,
            ..FdsConfig::default()
        };
        let exp_off = Experiment::new(topology, off, FormationConfig::default());
        without_sum += exp_off.run(0.35, 8, &[victim], seed).completeness;
    }
    assert!(
        with_sum >= without_sum - 1e-9,
        "cumulative reports must not hurt completeness: {with_sum} vs {without_sum}"
    );
}

#[test]
fn energy_balanced_forwarding_spreads_load() {
    // The paper prefers peer forwarding with energy-aware waiting
    // periods "because of energy-balancing considerations". Ablation:
    // with the energy term removed, the same low-NID neighbours win
    // every back-off race and burn their batteries; with it, the load
    // spreads and the peak forwarder count drops.
    use cbfd::core::node::FdsNode;
    use cbfd::core::profile::build_profiles;
    use cbfd::net::sim::Simulator;

    let run = |energy_aware: bool| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let center = Point::new(0.0, 0.0);
        let mut positions = vec![center];
        positions.extend(
            Placement::UniformDisk {
                center,
                radius: 100.0,
            }
            .generate(39, &mut rng),
        );
        let topology = Topology::from_positions(positions, 100.0);
        let view = cbfd::cluster::oracle::form(&topology, &FormationConfig::default());
        let profiles = build_profiles(&view);
        let config = FdsConfig {
            energy_balanced_forwarding: energy_aware,
            promiscuous_recovery: false,
            ..FdsConfig::default()
        };
        let mut sim = Simulator::new(topology, RadioConfig::bernoulli(0.35), 41, |id| {
            FdsNode::new(profiles[id.index()].clone(), config, 1_000.0)
        });
        // Drain batteries fast so the energy term has something to
        // react to within the run.
        sim.set_energy_model(cbfd::net::energy::EnergyModel {
            initial: 120.0,
            tx_cost: 1.0,
            rx_cost: 0.0,
            harvest_per_sec: 0.0,
        });
        sim.run_until(SimTime::from_secs(60) - SimDuration::from_micros(1));
        let forwards: Vec<u64> = sim
            .actors()
            .map(|(_, n)| n.stats().peer_forwards_sent)
            .collect();
        let total: u64 = forwards.iter().sum();
        let peak: u64 = forwards.iter().copied().max().unwrap_or(0);
        (total, peak)
    };

    let (total_aware, peak_aware) = run(true);
    let (total_blind, peak_blind) = run(false);
    assert!(
        total_aware > 0 && total_blind > 0,
        "loss must trigger forwarding"
    );
    // Peak share of the busiest forwarder: energy-aware must not be
    // worse than energy-blind (it rotates responders as they drain).
    let share_aware = peak_aware as f64 / total_aware as f64;
    let share_blind = peak_blind as f64 / total_blind as f64;
    assert!(
        share_aware <= share_blind + 0.02,
        "energy-aware peak share {share_aware:.3} vs blind {share_blind:.3}"
    );
}

#[test]
fn takeover_update_reaches_members_beyond_the_deputy_range() {
    // Figure 2(a): after the head fails, the promoted deputy cannot
    // reach member v directly; a relay v' that heard both v and the
    // deputy forwards the takeover update proactively, using the
    // deputy's own digest to learn who is out of reach.
    use cbfd::cluster::{Cluster, ClusterView};
    use std::collections::BTreeMap;

    // Geometry: head at the origin; deputy at (80, 0); v at (-80, 0)
    // (160 m from the deputy — out of range); relay at (0, 30) hears
    // everyone.
    let positions = vec![
        Point::new(0.0, 0.0),   // 0: head
        Point::new(80.0, 0.0),  // 1: deputy
        Point::new(-80.0, 0.0), // 2: v (outside the deputy's range)
        Point::new(0.0, 30.0),  // 3: relay
    ];
    let topology = Topology::from_positions(positions, 100.0);
    assert!(
        !topology.linked(NodeId(1), NodeId(2)),
        "v must be out of the deputy's range"
    );
    assert!(topology.linked(NodeId(3), NodeId(1)) && topology.linked(NodeId(3), NodeId(2)));

    let cluster = Cluster::new(
        NodeId(0),
        vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        vec![NodeId(1)], // the deputy we want promoted
    );
    let cid = cluster.id();
    let mut clusters = BTreeMap::new();
    clusters.insert(cid, cluster);
    let view = ClusterView::from_parts(clusters, vec![Some(cid); 4], BTreeMap::new());
    let experiment = Experiment::with_view(topology, view, FdsConfig::default());

    // Kill the head; the deputy takes over; v must still learn of the
    // head's failure (via the relay) — i.e. completeness holds for v.
    let outcome = experiment.run(
        0.0,
        6,
        &[PlannedCrash {
            epoch: 1,
            node: NodeId(0),
        }],
        9,
    );
    assert!(
        outcome.detection_latency.contains_key(&NodeId(0)),
        "the deputy must judge the dead head"
    );
    assert!(
        !outcome
            .missed
            .iter()
            .any(|m| m.observer == NodeId(2) && m.failed == NodeId(0)),
        "v beyond the deputy's range must still be informed: {:?}",
        outcome.missed
    );
}
