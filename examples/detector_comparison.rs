//! Head-to-head: the cluster-based FDS against the flooding, gossip,
//! and base-station baselines on the same network, same crashes, same
//! lossy channel (experiment E6 of `DESIGN.md`).
//!
//! ```sh
//! cargo run --release --example detector_comparison
//! ```

use cbfd::baselines::{central, flood, gossip, swim, CrashAt};
use cbfd::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let n = 200;
    let positions = Placement::UniformRect(Rect::square(700.0)).generate(n, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);
    let epochs = 30;
    let p = 0.15;
    let interval = SimDuration::from_secs(1);

    let crashes = [
        CrashAt {
            epoch: 2,
            node: NodeId(50),
        },
        CrashAt {
            epoch: 4,
            node: NodeId(120),
        },
    ];
    let planned: Vec<PlannedCrash> = crashes
        .iter()
        .map(|c| PlannedCrash {
            epoch: c.epoch,
            node: c.node,
        })
        .collect();

    println!("{n} nodes, p = {p}, {epochs} intervals, crashes at epochs 2 and 4\n");
    println!(
        "{:<14} {:>9} {:>13} {:>13} {:>16}",
        "detector", "false+", "completeness", "latency", "tx/node/interval"
    );

    // Cluster-based FDS.
    let experiment = Experiment::new(
        topology.clone(),
        FdsConfig::default(),
        FormationConfig::default(),
    );
    let fds = experiment.run(p, epochs, &planned, 11);
    let fds_latency: u64 = fds.detection_latency.values().copied().max().unwrap_or(0);
    println!(
        "{:<14} {:>9} {:>13.3} {:>13} {:>16.2}",
        "cbfd",
        fds.false_detections.len(),
        fds.completeness,
        fds_latency,
        fds.metrics.transmissions as f64 / (n as f64 * epochs as f64)
    );

    // Flat flooding.
    let fl = flood::run(&topology, p, interval, epochs, &crashes, 11);
    print_baseline("flooding", n, epochs, &fl);

    // Gossip.
    let threshold = gossip::suggested_threshold(&topology);
    let go = gossip::run(&topology, p, interval, epochs, threshold, &crashes, 11);
    print_baseline("gossip", n, epochs, &go);

    // Base station at node 0.
    let ce = central::run(&topology, p, interval, epochs, 2, &crashes, 11);
    print_baseline("base-station", n, epochs, &ce);

    // SWIM with a 4-period suspicion timeout.
    let sw = swim::run(&topology, p, interval, epochs, 4, &crashes, 11);
    print_baseline("swim", n, epochs, &sw);

    println!(
        "\nnote: gossip latency includes its staleness threshold ({threshold} intervals here); \
         the base-station detector informs only nodes its verdict flood reaches"
    );
}

fn print_baseline(name: &str, n: usize, epochs: u64, outcome: &cbfd::baselines::BaselineOutcome) {
    let latency: u64 = outcome
        .detection_latency
        .values()
        .copied()
        .max()
        .unwrap_or(0);
    println!(
        "{:<14} {:>9} {:>13.3} {:>13} {:>16.2}",
        name,
        outcome.false_suspicions.len(),
        outcome.completeness,
        latency,
        outcome.tx_per_node_interval(n)
    );
    let _ = epochs;
}
