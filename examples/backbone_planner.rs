//! Backbone planner: the operations questions an FDS deployment team
//! would ask before launch, answered from the analysis models —
//! without running a single protocol message.
//!
//! * How robust is the formed architecture? (`ClusterStats`)
//! * How likely is a false alarm per interval? (Figure 5 at the
//!   weakest cluster)
//! * How many heartbeat intervals until the whole field knows about a
//!   failure, at 99% confidence? (latency model over the real
//!   backbone)
//! * What fraction of the field is informed by a single dissemination
//!   wave? (system model, E7)
//!
//! ```sh
//! cargo run --release --example backbone_planner
//! ```

use cbfd::analysis::{latency, system::SystemModel};
use cbfd::cluster::stats::{ClusterStats, DensityStats};
use cbfd::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let positions = Placement::UniformRect(Rect::square(900.0)).generate(350, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);
    let view = cbfd::cluster::oracle::form(&topology, &FormationConfig::default());

    println!("deployment: {:?}", DensityStats::of(&topology));
    let stats = ClusterStats::of(&view);
    println!("architecture: {stats}");
    println!(
        "fully redundant (deputy everywhere, backup on every link): {}",
        stats.fully_redundant()
    );

    for p in [0.1, 0.3, 0.5] {
        println!("\nat message-loss probability p = {p}:");
        println!(
            "  false-alarm risk per member-interval (weakest monitoring cluster, N = {}): {:.2e}",
            stats.min_monitored_size,
            stats.worst_cluster_false_detection(p)
        );

        // Backbone radius: the longest shortest route between clusters.
        let ids: Vec<_> = view.clusters().map(|c| c.id()).collect();
        let mut radius = 0usize;
        for a in &ids {
            for b in &ids {
                if let Some(route) = view.backbone_route(*a, *b) {
                    radius = radius.max(route.len() - 1);
                }
            }
        }
        let q = latency::link_success_per_interval(p, 2, 2, 2);
        println!(
            "  backbone radius {radius} hops; whole field informed within {} intervals (99%)",
            2 + latency::intervals_for_confidence(radius as u32, q, 0.99)
        );

        // One-wave informed fraction from a mid-field origin.
        let index: BTreeMap<_, _> = view
            .clusters()
            .enumerate()
            .map(|(i, c)| (c.id(), i))
            .collect();
        let model = SystemModel {
            populations: view.clusters().map(|c| c.len() as u64).collect(),
            links: view
                .gateway_links()
                .map(|(pair, link)| {
                    let (a, b) = pair.endpoints();
                    (index[&a], index[&b], link.backups.len() as u32)
                })
                .collect(),
            p,
            attempts: 2,
            retx: 2,
        };
        let informed = model.mean_informed_fraction(600, 12);
        println!("  single-wave informed fraction (origin-averaged): {informed:.4}");
    }
}
