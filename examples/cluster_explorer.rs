//! Cluster explorer: form clusters two ways — by the geometric oracle
//! and by the fully distributed, message-driven protocol — and print
//! the resulting architecture (heads, deputies, gateways, backups).
//!
//! ```sh
//! cargo run --example cluster_explorer
//! ```

use cbfd::cluster::{invariants, oracle, protocol};
use cbfd::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let positions = Placement::UniformRect(Rect::square(500.0)).generate(90, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);
    let config = FormationConfig::default();

    // Oracle formation: instantaneous, from global knowledge.
    let oracle_view = oracle::form(&topology, &config);

    // Distributed formation: probe/claim/join/announce iterations over
    // the simulated (and here slightly lossy) radio channel.
    let distributed = protocol::run_formation(
        &topology,
        RadioConfig::bernoulli(0.05),
        &config,
        SimDuration::from_millis(10),
        12,
        31,
    );

    println!(
        "oracle: {} clusters | distributed (p = 0.05): {} clusters",
        oracle_view.cluster_count(),
        distributed.cluster_count()
    );
    let agree = topology
        .node_ids()
        .filter(|n| oracle_view.cluster_of(*n) == distributed.cluster_of(*n))
        .count();
    println!("affiliation agreement: {agree}/{} nodes\n", topology.len());

    println!("oracle architecture:");
    for cluster in oracle_view.clusters() {
        let deputies: Vec<String> = cluster.deputies().iter().map(|d| d.to_string()).collect();
        println!(
            "  {}: head {}, {} members, deputies [{}]",
            cluster.id(),
            cluster.head(),
            cluster.len(),
            deputies.join(", ")
        );
    }
    println!("\nbackbone links:");
    for (pair, link) in oracle_view.gateway_links() {
        let (a, b) = pair.endpoints();
        let backups: Vec<String> = link.backups.iter().map(|b| b.to_string()).collect();
        println!(
            "  {a} <-> {b}: gateway {}, backups [{}]",
            link.primary,
            backups.join(", ")
        );
    }

    let violations = invariants::check(&topology, &oracle_view);
    println!(
        "\nstructural invariants (F1-F4): {}",
        if violations.is_empty() {
            "all hold".to_string()
        } else {
            format!("{violations:?}")
        }
    );
    println!(
        "backbone components: {} (1 means every cluster can learn every failure)",
        oracle_view.backbone_components().len()
    );
}
