//! Quickstart: run the cluster-based failure detection service on a
//! small random field, crash one node, and watch the whole network
//! learn about it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cbfd::prelude::*;

fn main() {
    // 1. Drop 60 hosts uniformly on a 400 m × 400 m field; every host
    //    has the paper's 100 m transmission range.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let positions = Placement::UniformRect(Rect::square(400.0)).generate(60, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);

    // 2. Form clusters (lowest-ID with deputies and gateways) and set
    //    up the FDS with its default timing (Thop = 10 ms, φ = 1 s).
    let experiment = Experiment::new(topology, FdsConfig::default(), FormationConfig::default());
    println!(
        "formed {} clusters over {} hosts",
        experiment.view().cluster_count(),
        experiment.topology().len()
    );

    // 3. Run 6 heartbeat intervals on a channel that loses every
    //    message with probability 0.1; node 42 crashes during epoch 1.
    let victim = NodeId(42);
    let outcome = experiment.run(
        0.1,
        6,
        &[PlannedCrash {
            epoch: 1,
            node: victim,
        }],
        7,
    );

    // 4. Report.
    match outcome.detection_latency.get(&victim) {
        Some(latency) => println!("{victim} detected {latency} epoch(s) after crashing"),
        None => println!("{victim} was NOT detected (try more epochs)"),
    }
    println!(
        "completeness: {:.3} ({} informed pairs missing)",
        outcome.completeness,
        outcome.missed.len()
    );
    println!(
        "accuracy: {} false detections",
        outcome.false_detections.len()
    );
    println!(
        "traffic: {} transmissions, delivery ratio {:.3}",
        outcome.metrics.transmissions,
        outcome.metrics.delivery_ratio()
    );
}
