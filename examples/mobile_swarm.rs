//! Mobile swarm: the FDS over an autonomously migrating population
//! (nano-sat / micro-UAV swarm), run as quasi-static phases —
//! move → reconcile the clustering → detect.
//!
//! ```sh
//! cargo run --release --example mobile_swarm
//! ```

use cbfd::cluster::{invariants, maintenance, oracle};
use cbfd::core::config::FdsConfig;
use cbfd::net::mobility::{RandomWaypoint, WaypointConfig};
use cbfd::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let bounds = Rect::square(600.0);
    let formation = FormationConfig::default();
    let mut walkers = RandomWaypoint::new(
        WaypointConfig {
            bounds,
            min_speed: 3.0,
            max_speed: 10.0,
            pause_secs: 2.0,
        },
        150,
        &mut rng,
    );

    let mut view = oracle::form(
        &Topology::from_positions(walkers.snapshot(), 100.0),
        &formation,
    );
    println!("initial clustering: {} clusters", view.cluster_count());

    let victim = NodeId(77);
    for phase in 0u64..6 {
        let topology = Topology::from_positions(walkers.snapshot(), 100.0);
        view = maintenance::reconcile(&topology, &formation, &view);
        let sound = invariants::check(&topology, &view).is_empty();

        let experiment = Experiment::with_view(topology, view.clone(), FdsConfig::default());
        let crashes = if phase == 2 {
            vec![PlannedCrash {
                epoch: 0,
                node: victim,
            }]
        } else {
            Vec::new()
        };
        let outcome = experiment.run(0.1, 4, &crashes, 1_000 + phase);

        println!(
            "phase {phase}: {} clusters (invariants {}), completeness {:.3}, \
             false detections {}, {} tx{}",
            view.cluster_count(),
            if sound { "ok" } else { "VIOLATED" },
            outcome.completeness,
            outcome.false_detections.len(),
            outcome.metrics.transmissions,
            if outcome.detection_latency.contains_key(&victim) {
                format!(", {victim} detected")
            } else {
                String::new()
            },
        );
        if phase == 2 {
            break; // the interesting part is done
        }
        walkers.advance(20.0, &mut rng);
    }
}
