//! Air-dropped sensor field: the paper's motivating workload at
//! scale.
//!
//! A thousand sensors land on a 1.5 km × 1.5 km field, organize into
//! clusters, and run the failure detection service while nodes die
//! over time (battery/impact attrition). The operation team's
//! question — "how healthy is the network?" — is answered from any
//! single surviving node's failure view, which is exactly the
//! completeness property.
//!
//! ```sh
//! cargo run --release --example sensor_field
//! ```

use cbfd::core::health::HealthReport;
use cbfd::core::node::FdsNode;
use cbfd::core::profile::build_profiles;
use cbfd::net::sim::Simulator;
use cbfd::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let field = Rect::square(1_500.0);
    let n = 1_000;
    let positions = Placement::UniformRect(field).generate(n, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);
    println!(
        "deployed {n} sensors, mean degree {:.1}, {} isolated",
        topology.mean_degree(),
        topology.isolated_nodes().len()
    );

    let experiment = Experiment::new(topology, FdsConfig::default(), FormationConfig::default());
    let view = experiment.view();
    println!(
        "formed {} clusters; largest has {} members; {} backbone component(s)",
        view.cluster_count(),
        view.clusters().map(|c| c.len()).max().unwrap_or(0),
        view.backbone_components().len()
    );

    // Attrition: 10 sensors die at various epochs, a mix of ordinary
    // members and whatever roles they happened to hold.
    let victims: Vec<PlannedCrash> = (0..10)
        .map(|i| PlannedCrash {
            epoch: 1 + i as u64,
            node: NodeId(37 + 97 * i),
        })
        .collect();

    let epochs = 16;
    let outcome = experiment.run(0.1, epochs, &victims, 99);

    println!("\nafter {epochs} heartbeat intervals at p = 0.1:");
    for c in &victims {
        match outcome.detection_latency.get(&c.node) {
            Some(lat) => println!(
                "  {} (died epoch {:2}) detected after {lat} epoch(s)",
                c.node, c.epoch
            ),
            None => println!("  {} (died epoch {:2}) NOT detected", c.node, c.epoch),
        }
    }
    println!(
        "\ncompleteness: {:.4} ({} of ~{} pairs missing)",
        outcome.completeness,
        outcome.missed.len(),
        outcome.crashed.len() * 990
    );
    println!("false detections: {}", outcome.false_detections.len());
    println!(
        "traffic: {} tx total = {:.1} tx/node/interval; peer forwards {}, inter-cluster reports {}",
        outcome.metrics.transmissions,
        outcome.metrics.transmissions as f64 / (n as f64 * epochs as f64),
        outcome.peer_forwards,
        outcome.reports
    );
    println!(
        "energy imbalance (stddev of remaining charge): {:.2}",
        outcome.energy_imbalance
    );

    // The operations view: rerun at the raw simulator level so any
    // single node's failure view can be turned into the health report
    // the paper's operators would read.
    let profiles = build_profiles(experiment.view());
    let config = cbfd::core::config::FdsConfig::default();
    let mut sim = Simulator::new(
        experiment.topology().clone(),
        RadioConfig::bernoulli(0.1),
        99,
        |id| FdsNode::new(profiles[id.index()].clone(), config, 1_000.0),
    );
    for c in &victims {
        sim.schedule_crash(
            c.node,
            SimTime::ZERO + config.heartbeat_interval * c.epoch + SimDuration::from_millis(500),
        );
    }
    sim.run_until(SimTime::ZERO + config.heartbeat_interval * epochs - SimDuration::from_micros(1));
    // Ask an arbitrary surviving sensor — completeness means the
    // answer is the same anywhere.
    let reporter = sim
        .alive_nodes_iter()
        .find(|r| sim.actor(*r).profile().cluster.is_some())
        .expect("somebody survived");
    let report = HealthReport::from_view(sim.actor(reporter).known_failed(), n);
    println!(
        "
health report as read from {reporter}: {report}"
    );
    println!(
        "  replenishment needed below 995 operational: {}",
        report.needs_replenishment(995)
    );
}
