//! Power-managed sensor field: duty-cycled nodes with announced sleep
//! plus data aggregation embedded in the FDS rounds — both extensions
//! from the paper's concluding remarks, running together.
//!
//! ```sh
//! cargo run --release --example power_managed_field
//! ```

use cbfd::core::config::FdsConfig;
use cbfd::core::service::PlannedSleep;
use cbfd::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let positions = Placement::UniformRect(Rect::square(450.0)).generate(120, &mut rng);
    let topology = Topology::from_positions(positions, 100.0);

    let config = FdsConfig {
        aggregation: true, // readings ride on heartbeats & digests
        ..FdsConfig::default()
    };
    let experiment = Experiment::new(topology, config, FormationConfig::default());
    println!(
        "{} clusters over 120 sensors; aggregation embedded (zero extra messages)",
        experiment.view().cluster_count()
    );

    // A third of the ordinary members duty-cycle: asleep for epochs
    // 3..7, announced.
    let sleepers: Vec<PlannedSleep> = experiment
        .view()
        .clusters()
        .flat_map(|c| c.non_head_members().collect::<Vec<_>>())
        .filter(|m| experiment.view().role_of(*m) == cbfd::cluster::Role::Ordinary)
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, node)| PlannedSleep {
            node,
            from_epoch: 3,
            until_epoch: 7,
        })
        .collect();
    println!("{} sensors duty-cycle through epochs 3..7", sleepers.len());

    let epochs = 10;
    let outcome = experiment.run_with_sleep(0.1, epochs, &[], &sleepers, 21);

    println!("\nwith announced sleep (p = 0.1, {epochs} epochs):");
    println!("  false detections: {}", outcome.false_detections.len());
    println!(
        "  traffic: {} tx ({:.2} per node-interval)",
        outcome.metrics.transmissions,
        outcome.metrics.transmissions as f64 / (120.0 * epochs as f64)
    );
    println!("  energy imbalance: {:.2}", outcome.energy_imbalance);

    // The control: same schedule, announcements off.
    let silent_config = FdsConfig {
        sleep_announcements: false,
        aggregation: true,
        ..FdsConfig::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let positions = Placement::UniformRect(Rect::square(450.0)).generate(120, &mut rng);
    let control = Experiment::new(
        Topology::from_positions(positions, 100.0),
        silent_config,
        FormationConfig::default(),
    );
    let silent = control.run_with_sleep(0.1, epochs, &[], &sleepers, 21);
    println!("\nwithout announcements (the problem the paper predicts):");
    println!(
        "  false detections: {} (each sleeper condemned on its first silent epoch)",
        silent.false_detections.len()
    );
}
